"""Unit tests for the columnar flow dataset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow.dataset import BIN_SECONDS, SCHEMA, FlowDataset
from tests.conftest import make_flow


class TestConstruction:
    def test_empty(self):
        empty = FlowDataset.empty()
        assert len(empty) == 0
        assert empty.total_bytes == 0
        assert empty.blackhole_share == 0.0

    def test_from_records_roundtrip(self):
        flows = [make_flow(time=i, src_port=i) for i in range(5)]
        dataset = FlowDataset.from_records(flows)
        assert len(dataset) == 5
        assert dataset.record(3) == flows[3]

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            FlowDataset({"time": np.zeros(1)})

    def test_unknown_column_rejected(self):
        columns = {name: np.zeros(1, dtype=dtype) for name, dtype in SCHEMA.items()}
        columns["bytes"] = np.ones(1, dtype=np.int64)
        columns["extra"] = np.zeros(1)
        with pytest.raises(ValueError, match="unknown"):
            FlowDataset(columns)

    def test_length_mismatch_rejected(self):
        columns = {name: np.zeros(2, dtype=dtype) for name, dtype in SCHEMA.items()}
        columns["time"] = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError, match="length"):
            FlowDataset(columns)

    def test_non_1d_rejected(self):
        columns = {name: np.zeros(2, dtype=dtype) for name, dtype in SCHEMA.items()}
        columns["time"] = np.zeros((2, 1), dtype=np.int64)
        with pytest.raises(ValueError, match="one-dimensional"):
            FlowDataset(columns)


class TestTransformations:
    def test_select_mask(self, handmade_flows):
        subset = handmade_flows.select(handmade_flows.blackhole)
        assert len(subset) == 5
        assert subset.blackhole.all()

    def test_select_index(self, handmade_flows):
        subset = handmade_flows.select(np.array([0, 2, 4]))
        assert len(subset) == 3
        assert subset.time[1] == handmade_flows.time[2]

    def test_concat(self, handmade_flows):
        merged = FlowDataset.concat([handmade_flows, handmade_flows])
        assert len(merged) == 2 * len(handmade_flows)

    def test_concat_empty_list(self):
        assert len(FlowDataset.concat([])) == 0

    def test_concat_single_is_same(self, handmade_flows):
        assert FlowDataset.concat([handmade_flows]) is handmade_flows

    def test_sort_by_time(self, handmade_flows):
        shuffled = handmade_flows.select(np.random.default_rng(0).permutation(len(handmade_flows)))
        ordered = shuffled.sort_by_time()
        assert (np.diff(ordered.time) >= 0).all()

    def test_time_slice(self, handmade_flows):
        window = handmade_flows.time_slice(60, 120)
        assert (window.time >= 60).all() and (window.time < 120).all()
        assert len(window) == 7

    def test_with_blackhole(self, handmade_flows):
        flags = np.ones(len(handmade_flows), dtype=bool)
        relabeled = handmade_flows.with_blackhole(flags)
        assert relabeled.blackhole.all()
        # Original unchanged.
        assert not handmade_flows.blackhole.all()

    def test_with_blackhole_length_mismatch(self, handmade_flows):
        with pytest.raises(ValueError):
            handmade_flows.with_blackhole(np.ones(3, dtype=bool))


class TestDerived:
    def test_packet_size(self, handmade_flows):
        expected = handmade_flows.bytes / handmade_flows.packets
        assert np.allclose(handmade_flows.packet_size, expected)

    def test_time_bin_default(self, handmade_flows):
        bins = handmade_flows.time_bin()
        assert set(np.unique(bins)) == {0, 1}

    def test_time_bin_custom(self, handmade_flows):
        assert (handmade_flows.time_bin(1000) == 0).all()

    def test_time_bin_invalid(self, handmade_flows):
        with pytest.raises(ValueError):
            handmade_flows.time_bin(0)

    def test_blackhole_share(self, handmade_flows):
        assert handmade_flows.blackhole_share == pytest.approx(5 / 12)

    def test_columns_read_only(self, handmade_flows):
        with pytest.raises(ValueError):
            handmade_flows.time[0] = 99

    def test_iteration_matches_record(self, handmade_flows):
        records = list(handmade_flows)
        assert len(records) == len(handmade_flows)
        assert records[0] == handmade_flows.record(0)


@settings(max_examples=25, deadline=None)
@given(
    times=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50)
)
def test_sort_is_permutation(times):
    dataset = FlowDataset.from_records([make_flow(time=t) for t in times])
    ordered = dataset.sort_by_time()
    assert sorted(times) == list(ordered.time)
    assert len(ordered) == len(dataset)
