"""E-F16: aggregation-induced correlation + PCA (Fig. 16a/16b).

Paper shape: a substantial share of metric column pairs correlates
strongly (~20 % above 0.7/0.8); a few dozen principal components
explain 0.8 of the variance, ~50 nearly all of it.
"""

from repro.experiments import fig16_correlation


def test_fig16_correlation(run_experiment):
    result = run_experiment(fig16_correlation)
    print()
    print(result.summary())

    for metric in ("packet_size", "bytes", "packets"):
        row = next(r for r in result.rows if r["analysis"] == f"spearman/{metric}")
        assert row["share_above_0.7"] > 0.1, metric

    # PCA: strong compressibility of the 150 deliberately redundant
    # columns.
    assert result.notes["components_for_0.8_variance"] <= 60
    assert result.notes["components_for_0.99_variance"] <= 120
    assert (
        result.notes["components_for_0.8_variance"]
        < result.notes["components_for_0.99_variance"]
    )
