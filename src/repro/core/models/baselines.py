"""Baseline classifiers: dummy coin-toss and the rule-based classifier.

The dummy classifier (DUM) bounds the worst case (Table 3's last row:
everything ≈ 0.5). The rule-based classifier (RBC) predicts from Step-1
tagging rules alone: a target-IP record is DDoS when any of its flows
matched an accepted rule — the "interpretable-only" baseline whose
surprisingly strong SAS score (≈ 0.917 Fβ) the paper highlights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.features.aggregation import AggregatedDataset
from repro.core.models.base import Classifier


class DummyClassifier(Classifier):
    """Uniform random guessing — the worst conceivable classifier."""

    name = "DUM"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._fitted = False

    def get_params(self) -> dict[str, object]:
        return {"seed": self.seed}

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DummyClassifier":
        # No check_fit_inputs: the dummy ignores features entirely, so
        # NaNs (pre-imputation matrices) are acceptable here.
        if np.asarray(X).shape[0] != np.asarray(y).shape[0]:
            raise ValueError("X and y length mismatch")
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("DummyClassifier is not fitted")
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, 2, size=np.asarray(X).shape[0]).astype(np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(X).shape[0], 0.5)


class RuleBasedClassifier:
    """Predicts per-target records from annotated tagging rules.

    Operates on :class:`AggregatedDataset` rather than feature matrices:
    the prediction is "any flow of this record matched one of the
    accepted rules". Optionally restricted to a subset of rule ids.
    """

    name = "RBC"

    def __init__(self, rule_ids: Optional[Sequence[str]] = None):
        self._rule_ids = frozenset(rule_ids) if rule_ids is not None else None

    def predict_records(self, data: AggregatedDataset) -> np.ndarray:
        """Predict labels for aggregated records from their rule tags."""
        if data.rule_tags is None:
            raise ValueError(
                "AggregatedDataset carries no rule annotations; aggregate "
                "with a rule set to use the RBC"
            )
        out = np.zeros(len(data), dtype=np.int64)
        for i, tags in enumerate(data.rule_tags):
            if self._rule_ids is None:
                out[i] = 1 if tags else 0
            else:
                out[i] = 1 if any(t in self._rule_ids for t in tags) else 0
        return out
