"""Unit tests for the shared CFG + worklist dataflow engine.

The rule passes (RS6xx/RS7xx) are covered end-to-end by the fixture
corpus in ``test_analysis.py``; here the graph builder and solver are
exercised directly with toy analyses, so a regression pinpoints the
engine rather than a rule built on it.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import (
    CFG,
    TOP,
    DataflowAnalysis,
    iter_functions,
    may_raise,
    solve,
)


def build(source):
    tree = ast.parse(textwrap.dedent(source))
    return CFG.build(tree.body[0])


def stmt_block(graph, line):
    """The unique non-synthetic block anchored at a source line."""
    matches = [
        b
        for b in graph.blocks
        if b.role not in ("entry", "exit", "raise", "join") and b.line == line
    ]
    assert len(matches) >= 1, f"no block at line {line}"
    return matches[0]


# --------------------------------------------------------------------------
# Toy analyses
# --------------------------------------------------------------------------


class MayAssign(DataflowAnalysis):
    """Forward-may: the set of names that *may* have been assigned."""

    def _targets(self, block):
        stmt = block.stmt
        if block.role == "stmt" and isinstance(stmt, ast.Assign):
            return frozenset(
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            )
        if block.role == "stmt" and isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                return frozenset({stmt.target.id})
        return frozenset()

    def transfer(self, block, fact):
        return fact | self._targets(block)


class MustAssign(MayAssign):
    """Forward-must: names assigned on *every* path (intersection join)."""

    def initial(self, cfg):
        return TOP

    def join(self, left, right):
        if left is TOP:
            return right
        if right is TOP:
            return left
        return left & right


class MayAssignPreOnRaise(MayAssign):
    """An assignment that raises never completed: exc edges carry the
    pre-state, the shape the resource pass relies on."""

    def transfer_exc(self, block, fact):
        return fact


class Liveness(DataflowAnalysis):
    """Backward-may liveness over plain assignments and returns."""

    direction = "backward"

    def transfer(self, block, fact):
        stmt = block.stmt
        if block.role != "stmt":
            return fact
        if isinstance(stmt, ast.Assign):
            kills = frozenset(
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            )
            uses = frozenset(
                n.id for n in ast.walk(stmt.value) if isinstance(n, ast.Name)
            )
            return (fact - kills) | uses
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            uses = frozenset(
                n.id for n in ast.walk(stmt.value) if isinstance(n, ast.Name)
            )
            return fact | uses
        return fact


class RefinedAssign(MayAssign):
    """MayAssign that honours `is None` branch refinements."""

    def refine(self, fact, edge):
        if edge.refine is not None and edge.refine[0] == "none":
            return fact - {edge.refine[1]}
        return fact


# --------------------------------------------------------------------------
# Builder structure
# --------------------------------------------------------------------------


def test_branch_edges_and_join():
    graph = build(
        """\
        def f(cond):
            if cond:
                x = 1
            return x
        """
    )
    test = stmt_block(graph, 2)
    assert test.role == "test"
    kinds = {e.kind for e in graph.succ[test.index]}
    assert kinds == {"true", "false"}


def test_loop_has_back_edge():
    graph = build(
        """\
        def f(items):
            total = 0
            for item in items:
                total += item
            return total
        """
    )
    loop = stmt_block(graph, 3)
    assert loop.role == "loop"
    body = stmt_block(graph, 4)
    back = [e for e in graph.succ[body.index] if e.dst == loop.index]
    assert back, "loop body must branch back to the header"


def test_uncaught_call_has_exc_edge_to_raise():
    graph = build(
        """\
        def f():
            risky()
            return 0
        """
    )
    call = stmt_block(graph, 2)
    exc = [e for e in graph.succ[call.index] if e.kind == "exc"]
    assert [e.dst for e in exc] == [CFG.RAISE]


def test_catch_all_handler_intercepts_exc_edges():
    graph = build(
        """\
        def f():
            try:
                risky()
            except Exception:
                handled = 1
            return 0
        """
    )
    call = stmt_block(graph, 3)
    exc = [e for e in graph.succ[call.index] if e.kind == "exc"]
    assert exc
    for edge in exc:
        assert edge.dst != CFG.RAISE
        assert graph.blocks[edge.dst].role == "except"


def test_finally_body_is_duplicated_per_continuation():
    graph = build(
        """\
        def f():
            try:
                risky()
                return 1
            finally:
                cleanup()
        """
    )
    copies = [
        b
        for b in graph.blocks
        if b.role == "stmt" and b.line == 6  # the cleanup() line
    ]
    # At least the return continuation and the exception continuation
    # each run their own copy of the finally body.
    assert len(copies) >= 2


def test_with_blocks_have_enter_and_exit_roles():
    graph = build(
        """\
        def f(p):
            with open(p) as fh:
                fh.read()
            return 1
        """
    )
    roles = {b.role for b in graph.blocks}
    assert "with" in roles and "with-exit" in roles


def test_is_none_branch_refinements():
    graph = build(
        """\
        def f(x):
            if x is None:
                return 0
            return 1
        """
    )
    test = stmt_block(graph, 2)
    refines = {e.kind: e.refine for e in graph.succ[test.index]}
    assert refines["true"] == ("none", "x")
    assert refines["false"] == ("not-none", "x")


def test_may_raise_classification():
    def stmt(src):
        return ast.parse(textwrap.dedent(src)).body[0]

    assert may_raise(stmt("f()"))
    assert may_raise(stmt("raise ValueError()"))
    assert may_raise(stmt("assert x"))
    assert not may_raise(stmt("x = 1"))
    # Code inside a nested definition does not execute *here*.
    assert not may_raise(stmt("def g():\n    f()"))


def test_iter_functions_qualnames_and_classes():
    tree = ast.parse(
        textwrap.dedent(
            """\
            class C:
                def m(self):
                    pass

            def helper():
                def inner():
                    pass
                return inner
            """
        )
    )
    by_name = {name: cls for name, _, cls in iter_functions(tree)}
    assert set(by_name) == {"C.m", "helper", "helper.inner"}
    assert by_name["C.m"] is not None and by_name["C.m"].name == "C"
    # A nested function is not a method of the enclosing class.
    assert by_name["helper.inner"] is None


# --------------------------------------------------------------------------
# Solver semantics
# --------------------------------------------------------------------------


def test_forward_may_joins_branches():
    graph = build(
        """\
        def f(cond):
            if cond:
                x = 1
            return x
        """
    )
    facts = solve(graph, MayAssign())
    assert facts[CFG.EXIT] == {"x"}


def test_forward_must_intersects_branches():
    one_sided = build(
        """\
        def f(cond):
            if cond:
                x = 1
            return 0
        """
    )
    assert "x" not in solve(one_sided, MustAssign())[CFG.EXIT]
    both = build(
        """\
        def f(cond):
            if cond:
                x = 1
            else:
                x = 2
            return x
        """
    )
    assert "x" in solve(both, MustAssign())[CFG.EXIT]


def test_loop_reaches_fixpoint_and_propagates():
    graph = build(
        """\
        def f(n):
            while n:
                x = 1
            return 0
        """
    )
    facts = solve(graph, MayAssign())
    # The body assignment flows around the back edge and out of the
    # loop's false edge.
    assert facts[CFG.EXIT] == {"x"}


def test_exception_edges_carry_the_pre_state():
    graph = build(
        """\
        def f():
            x = risky()
            return x
        """
    )
    facts = solve(graph, MayAssignPreOnRaise())
    # If risky() raises, the binding never happened.
    assert "x" not in facts[CFG.RAISE]
    assert "x" in facts[CFG.EXIT]


def test_exception_join_merges_handler_and_normal_paths():
    graph = build(
        """\
        def f():
            try:
                x = risky()
            except Exception:
                y = 1
            return 0
        """
    )
    facts = solve(graph, MayAssignPreOnRaise())
    # Both the normal binding and the handler binding may reach exit.
    assert facts[CFG.EXIT] >= {"x", "y"}


def test_backward_liveness():
    graph = build(
        """\
        def f(a):
            b = a
            c = b
            return c
        """
    )
    facts = solve(graph, Liveness())
    # Only the parameter is live at entry; b dies after feeding c.
    assert facts[CFG.ENTRY] == {"a"}
    assert facts[stmt_block(graph, 3).index] == {"c"}


def test_refinement_kills_fact_on_none_edge():
    graph = build(
        """\
        def f():
            x = make()
            if x is None:
                return 0
            return 1
        """
    )
    facts = solve(graph, RefinedAssign())
    # Input to `return 0` flowed through the None-branch: x was dropped.
    assert "x" not in facts[stmt_block(graph, 4).index]
    # The not-None branch keeps the binding.
    assert "x" in facts[stmt_block(graph, 5).index]
