"""E-T4: hyperparameter grid search (Table 4, Appendix C)."""

from repro.experiments import table4_hyperparams


def test_table4_hyperparams(run_experiment):
    result = run_experiment(table4_hyperparams)
    print()
    print(result.summary())

    by_model = {row["model"]: row for row in result.rows}
    assert set(by_model) == set(table4_hyperparams.GRIDS)

    # Every grid was fully evaluated and produced a usable model.
    for name, row in by_model.items():
        expected_points = 1
        for values in table4_hyperparams.GRIDS[name].values():
            expected_points *= len(values)
        assert row["grid_points"] == expected_points, name
        assert row["cv_fbeta"] > 0.6, name

    # The tuned tree-family and linear models reach high CV scores.
    for name in ("XGB", "DT", "LSVM", "NB-G"):
        assert by_model[name]["cv_fbeta"] > 0.9, name
