"""Experiment E-F15: rule-minimisation sensitivity (paper Appendix A).

Runs Algorithm 1 over a grid of confidence-loss / support-loss settings
and reports the surviving rule count per cell. Expected shape: counts
drop as the thresholds grow; beyond Lc = Ls = 0.01 further increases
barely reduce the set (the paper's justification for choosing 0.01).
"""

from __future__ import annotations

from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import mine_rules
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import DAYS_BY_SCALE, balanced_corpus
from repro.ixp.profiles import ALL_PROFILES
from repro.netflow.dataset import FlowDataset

#: The Lc/Ls grid of Fig. 15.
GRID = (0.0001, 0.001, 0.01, 0.1)


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days = DAYS_BY_SCALE[scale]
    flows = FlowDataset.concat(
        [balanced_corpus(p, n_days).flows for p in ALL_PROFILES]
    )
    mining = mine_rules(flows, min_confidence=0.8)

    result = ExperimentResult(experiment="fig15-sensitivity")
    counts: dict[tuple[float, float], int] = {}
    for lc in GRID:
        for ls in GRID:
            remaining = minimize_rules(
                mining.blackhole_rules, confidence_loss=lc, support_loss=ls
            )
            counts[(lc, ls)] = len(remaining)
            result.rows.append(
                {"Lc": lc, "Ls": ls, "remaining_rules": len(remaining)}
            )

    result.notes["input_rules"] = len(mining.blackhole_rules)
    result.notes["rules_at_0.01_0.01"] = counts[(0.01, 0.01)]
    result.notes["rules_at_0.1_0.1"] = counts[(0.1, 0.1)]
    # The paper's argument: going beyond 0.01 saves few rules.
    saved = counts[(0.01, 0.01)] - counts[(0.1, 0.1)]
    result.notes["extra_rules_removed_beyond_0.01"] = saved
    return result
