"""Multi-label prediction of tagging rules (paper §5.2.2, future work).

The paper notes: "It might be possible to use multiclass classification
to predict the tagging rules and use them as ACLs directly instead.
This would remove the need to apply rule tags to flows for prediction,
but might lead to a less interpretable model."

This module implements that extension as a one-vs-rest bank of
gradient-boosted trees: for each curated tagging rule, a binary model
predicts from the per-target features whether the rule *would* match
the target's traffic. At prediction time the matching step of Step 1
can then be skipped — the ACLs to install come straight from the
classifier bank — at the interpretability cost the paper warns about
(the predicted tags are model output, not observed header matches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import AggregatedDataset
from repro.core.models.pipeline import ModelPipeline, make_pipeline


@dataclass(frozen=True)
class RulePredictionReport:
    """Per-rule evaluation of predicted vs observed tags."""

    rule_id: str
    support: int  # observed matches in the evaluation set
    precision: float
    recall: float


class RuleTagPredictor:
    """One-vs-rest prediction of tagging-rule matches per target record.

    Training data must carry rule annotations
    (``AggregatedDataset.rule_tags``, produced by aggregating with a
    rule set). Rules observed fewer than ``min_support`` times are not
    modelled (their predictions would be noise) and never predicted.
    """

    def __init__(self, min_support: int = 10, **model_params: object):
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.min_support = min_support
        # Per-rule positives are scarce, so default to lighter
        # regularisation than the corpus-scale GBT defaults; explicit
        # kwargs still win.
        self._model_params: dict[str, object] = {
            "min_child_weight": 1.0,
            "reg_lambda": 1.0,
        }
        self._model_params.update(model_params)
        self.woe: WoEEncoder | None = None
        self._models: dict[str, ModelPipeline] = {}

    @property
    def modelled_rules(self) -> tuple[str, ...]:
        return tuple(sorted(self._models))

    @staticmethod
    def _tag_matrix(data: AggregatedDataset) -> dict[str, np.ndarray]:
        if data.rule_tags is None:
            raise ValueError(
                "AggregatedDataset carries no rule annotations; aggregate "
                "with the curated rule set first"
            )
        out: dict[str, np.ndarray] = {}
        for i, tags in enumerate(data.rule_tags):
            for tag in tags:
                out.setdefault(tag, np.zeros(len(data), dtype=np.int64))[i] = 1
        return out

    def fit(self, data: AggregatedDataset) -> "RuleTagPredictor":
        """Fit one binary model per sufficiently-observed rule."""
        tag_labels = self._tag_matrix(data)
        self.woe = WoEEncoder().fit(data)
        matrix = assemble(data, self.woe)
        self._models = {}
        for rule_id, labels in tag_labels.items():
            positives = int(labels.sum())
            if positives < self.min_support or positives == len(data):
                continue
            pipeline = make_pipeline("XGB", **self._model_params)
            pipeline.fit(matrix.X, labels)
            self._models[rule_id] = pipeline
        return self

    def predict_tags(self, data: AggregatedDataset) -> list[tuple[str, ...]]:
        """Predicted rule ids per record (sorted for determinism)."""
        if self.woe is None:
            raise RuntimeError("RuleTagPredictor is not fitted")
        matrix = assemble(data, self.woe)
        votes: dict[str, np.ndarray] = {
            rule_id: model.predict(matrix.X).astype(bool)
            for rule_id, model in self._models.items()
        }
        out: list[tuple[str, ...]] = []
        for i in range(len(data)):
            out.append(tuple(sorted(r for r, v in votes.items() if v[i])))
        return out

    def evaluate(self, data: AggregatedDataset) -> list[RulePredictionReport]:
        """Score predicted tags against observed annotations."""
        observed = self._tag_matrix(data)
        predicted = self.predict_tags(data)
        reports = []
        for rule_id in self.modelled_rules:
            truth = observed.get(rule_id, np.zeros(len(data), dtype=np.int64)).astype(bool)
            guess = np.asarray([rule_id in tags for tags in predicted], dtype=bool)
            tp = int((truth & guess).sum())
            fp = int((~truth & guess).sum())
            fn = int((truth & ~guess).sum())
            reports.append(
                RulePredictionReport(
                    rule_id=rule_id,
                    support=int(truth.sum()),
                    precision=tp / (tp + fp) if tp + fp else 0.0,
                    recall=tp / (tp + fn) if tp + fn else 0.0,
                )
            )
        return reports
