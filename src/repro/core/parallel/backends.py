"""Execution backends for shard classification.

A backend owns the N per-shard classification contexts: the deployed
model (re-broadcast after every retrain), a per-shard
:class:`~repro.obs.MetricRegistry`, and the frozen-WoE
:class:`~repro.core.encoding.matrix.MatrixAssembler` reused across bins
of one retrain epoch. Three implementations:

* :class:`SerialBackend` — runs shards sequentially in-process. The
  default: zero IPC cost, same results, and on a single-core host the
  batched execution alone carries the speedup.
* :class:`ProcessBackend` — persistent worker processes (``fork`` start
  method when available, ``spawn`` otherwise) fed over pipes with one
  chunked message per closed-bin batch; models travel as pickle blobs,
  flow columns as raw numpy arrays, verdicts come back as plain
  dataclass lists. A dead worker raises a typed :class:`ShardFailure`
  instead of hanging or leaking a raw pipe error.
* :class:`~repro.core.resilience.SupervisedProcessBackend` — the
  production wrapper: per-request deadlines, automatic restart with
  model re-broadcast, poison-batch quarantine and graceful degradation
  to serial execution (see :mod:`repro.core.resilience`).

All of them produce verdicts through the same
:meth:`~repro.core.scrubber.IXPScrubber.classify_flows_batch` call, so
backend choice can never change results — only where the work runs and
how failures are handled.

Sketch mode: when ``classify`` is called with ``agg`` (a
:class:`~repro.core.features.sketches.SketchParams`), workers become
pure *counters* — each builds a per-shard
:class:`~repro.core.features.sketches.SketchAggregator` from its batch
and replies with the picklable sketch state instead of verdicts; the
coordinator merges states and scores the merged records. Sketch builds
are deterministic functions of the batch, so retry-after-restart
reproduces the identical state (see ``docs/SKETCHES.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import weakref
from typing import Optional, Sequence

from repro import obs
from repro.core.features.sketches import SketchAggregator, SketchParams
from repro.core.scrubber import IXPScrubber, TargetVerdict
from repro.netflow.dataset import FlowDataset
from repro.obs import names

__all__ = [
    "SerialBackend",
    "ProcessBackend",
    "ShardFailure",
    "make_backend",
    "BACKENDS",
]


class ShardFailure(RuntimeError):
    """A shard worker died or its pipe broke mid-operation.

    Raised by :class:`ProcessBackend` when it detects a dead worker (the
    unsupervised backend surfaces the failure to its caller); the
    supervised backend catches the same conditions internally and
    recovers instead.
    """

    def __init__(self, shard: int, reason: str):
        super().__init__(f"shard {shard}: {reason}")
        self.shard = shard
        self.reason = reason


class SerialBackend:
    """Run every shard sequentially in the coordinator process."""

    name = "serial"

    def __init__(self, n_shards: int):
        self.n_shards = n_shards
        self.registries = [obs.MetricRegistry() for _ in range(n_shards)]
        self._scrubber: Optional[IXPScrubber] = None
        self._assembler = None

    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Deploy a newly trained model to all shards."""
        self._scrubber = scrubber
        self._assembler = scrubber.make_assembler()

    def classify(
        self,
        shard_flows: Sequence[Optional[FlowDataset]],
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ) -> list:
        """Classify each shard's flow batch; one reply per shard.

        Exact mode (``agg=None``) replies with verdict lists; sketch
        mode replies with per-shard sketch states for the coordinator
        to merge (empty shards reply ``None``).
        """
        if self._scrubber is None:
            raise RuntimeError("no model broadcast to shards yet")
        out: list = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                out.append(None if agg is not None else [])
                continue
            with obs.use_registry(self.registries[shard]):
                with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                    obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                    if agg is not None:
                        out.append(_sketch_shard_state(flows, agg))
                    else:
                        out.append(
                            self._scrubber.classify_flows_batch(
                                flows, min_flows=min_flows, assembler=self._assembler
                            )
                        )
        return out

    def snapshots(self) -> list[dict]:
        """One metrics snapshot per shard registry."""
        return [obs.snapshot(registry) for registry in self.registries]

    def close(self) -> None:
        """Release backend resources (no-op for in-process shards)."""


def _sketch_shard_state(flows: FlowDataset, agg: SketchParams) -> dict:
    """Build one shard's sketch state from its flow batch.

    A pure function of (batch, params): a retried batch — even on a
    freshly restarted worker — reproduces the bitwise-identical state,
    which is what keeps sketch-mode verdicts stable under faults.
    """
    return SketchAggregator(agg).absorb(flows).to_state()


def _execute_fault(conn, directive) -> bool:
    """Run an injected fault directive inside the worker.

    Returns True if the directive consumed the reply (the caller must
    not send a verdict list for this request). ``crash`` never returns.
    """
    kind, seconds = directive
    if kind == "crash":
        # A hard exit, not an exception: simulates OOM kills and
        # segfaults, the failures a supervisor actually sees.
        os._exit(70)
    if kind in ("hang", "slow"):
        # A hang sleeps past any deadline (the parent kills us); a slow
        # shard adds bounded latency and then answers correctly.
        time.sleep(seconds)
        return False
    if kind == "corrupt":
        # Raw bytes that cannot unpickle: the parent's recv() raises,
        # exercising the torn-frame / corrupted-pipe path.
        conn.send_bytes(b"\xde\xad\xbe\xef repro corrupt frame")
        return True
    return False


def _worker_main(conn, shard_index: int) -> None:
    """Worker loop: react to model / classify / snapshot / stop messages.

    A classify message may carry an optional fault directive as its
    fourth element — evaluated by the supervisor's deterministic
    :class:`~repro.core.resilience.FaultPlan` and executed here, so
    chaos tests fail in the real worker code path.
    """
    registry = obs.MetricRegistry()
    scrubber: Optional[IXPScrubber] = None
    assembler = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "model":
            scrubber = pickle.loads(message[1])
            assembler = scrubber.make_assembler()
        elif kind == "classify":
            columns, min_flows = message[1], message[2]
            directive = message[3] if len(message) > 3 else None
            agg = message[4] if len(message) > 4 else None
            if directive is not None and _execute_fault(conn, directive):
                continue
            flows = FlowDataset(columns)
            with obs.use_registry(registry):
                with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                    obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                    if agg is not None:
                        reply = _sketch_shard_state(flows, agg)
                    else:
                        reply = scrubber.classify_flows_batch(
                            flows, min_flows=min_flows, assembler=assembler
                        )
            conn.send(reply)
        elif kind == "snapshot":
            conn.send(obs.snapshot(registry))
    conn.close()


class ProcessBackend:
    """Persistent worker processes, one per shard, fed over pipes.

    Workers stay alive across bins so the model and its frozen-WoE
    assembler are deserialised once per retrain, not once per bin. All
    requests are answered in shard order, keeping the reduce step
    deterministic regardless of worker scheduling.

    Failure model: this backend does not *recover* — a worker found
    dead raises :class:`ShardFailure` so the caller can decide. Use
    :class:`~repro.core.resilience.SupervisedProcessBackend` for
    deadlines, restarts and graceful degradation.
    """

    name = "process"

    def __init__(self, n_shards: int, start_method: Optional[str] = None):
        self.n_shards = n_shards
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        # Pre-size so close() is safe however far __init__ got.
        self._conns: list = [None] * n_shards
        self._procs: list = [None] * n_shards
        # Reap orphaned workers if the owner never calls close(). The
        # finalizer captures the slot *lists* (mutated in place by
        # _start_worker and the supervisor's restart path), never self.
        self._finalizer = weakref.finalize(
            self, _reap_orphans, self._conns, self._procs
        )
        try:
            for shard in range(n_shards):
                self._start_worker(shard)
        except BaseException:
            self.close()
            raise

    def _start_worker(self, shard: int) -> None:
        """(Re)spawn the worker process serving one shard slot."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, shard), daemon=True
        )
        proc.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = proc

    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Ship the pickled model to every worker.

        Raises :class:`ShardFailure` naming the dead shard if a worker
        exited (or its pipe broke) before the model reached it.
        """
        # The scrubber's tree models pickle as compiled flat-array
        # kernels (node graphs are derived state and excluded), so the
        # payload is a handful of contiguous buffers per ensemble.
        blob = pickle.dumps(scrubber)
        obs.counter(names.C_PARALLEL_BROADCAST_BYTES).inc(len(blob))
        for shard, conn in enumerate(self._conns):
            proc = self._procs[shard]
            if proc is None or not proc.is_alive():
                raise ShardFailure(shard, "worker process died before broadcast")
            try:
                conn.send(("model", blob))
            except (BrokenPipeError, OSError) as exc:
                raise ShardFailure(shard, f"model broadcast failed: {exc}") from exc

    def classify(
        self,
        shard_flows: Sequence[Optional[FlowDataset]],
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ) -> list:
        """Dispatch per-shard batches, then collect in shard order.

        Sketch mode (``agg`` given) collects per-shard sketch states
        instead of verdict lists; empty shards reply ``None``.
        """
        active = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                continue
            try:
                message = ("classify", flows.to_columns(), min_flows)
                if agg is not None:
                    message = message + (None, agg)
                self._conns[shard].send(message)
            except (BrokenPipeError, OSError) as exc:
                raise ShardFailure(shard, f"batch dispatch failed: {exc}") from exc
            active.append(shard)
        out: list = [None if agg is not None else [] for _ in shard_flows]
        for shard in active:
            try:
                out[shard] = self._conns[shard].recv()
            except (EOFError, OSError, pickle.UnpicklingError) as exc:
                raise ShardFailure(
                    shard,
                    f"worker died mid-batch: {exc if str(exc) else type(exc).__name__}",
                ) from exc
        return out

    def snapshots(self) -> list[dict]:
        """One metrics snapshot per worker, fetched over the pipe."""
        for conn in self._conns:
            conn.send(("snapshot",))
        return [conn.recv() for conn in self._conns]

    def close(self) -> None:
        """Stop all workers and reap them.

        Idempotent, and safe after a partially failed ``__init__``:
        slots that never spawned are skipped, started workers are
        stopped and joined. Detaches the orphan-reaper finalizer first —
        an explicit close supersedes the garbage-collection fallback.
        """
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._conns = []
        self._procs = []


def _reap_orphans(conns: list, procs: list) -> None:
    """Last-resort cleanup for workers whose backend was never closed.

    Runs from a ``weakref.finalize`` when the backend is garbage
    collected (and, via finalize's atexit hook, at interpreter exit),
    so an engine that was never ``close()``d cannot leak live worker
    processes. Deliberately takes the *list objects*, not the backend —
    holding ``self`` in the finalizer would keep the backend alive
    forever. Best effort: ask nicely over the pipe, then terminate.
    """
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError, ValueError):
            pass
    for proc in procs:
        if proc is None:
            continue
        try:
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        except (OSError, ValueError, AssertionError):
            pass
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.close()
        except OSError:
            pass


def _supervised_backend(*args, **kwargs):
    # Imported lazily: repro.core.resilience imports this module.
    from repro.core.resilience.supervisor import SupervisedProcessBackend

    return SupervisedProcessBackend(*args, **kwargs)


BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
    "supervised": _supervised_backend,
}


def make_backend(name: str, n_shards: int, **kwargs):
    """Instantiate a backend by name, forwarding backend kwargs.

    ``serial`` takes no extra options; ``process`` accepts
    ``start_method`` (``"fork"``/``"spawn"``); ``supervised`` adds the
    supervision knobs (``shard_timeout``, ``max_restarts``,
    ``fault_plan``, ... — see
    :class:`~repro.core.resilience.SupervisedProcessBackend`).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return cls(n_shards, **kwargs)
