"""The checked-in finding baseline: grandfathered debt, with reasons.

The baseline file (``lint-baseline.json`` at the repo root) lists
fingerprints of findings that are *known and accepted*; ``repro lint``
fails only on findings outside it. The intended workflow:

* the baseline ships **empty** — new violations are fixed or suppressed
  inline at the site, with a reason;
* when a finding genuinely must be grandfathered (e.g. a pass tightens
  and surfaces pre-existing debt too large for one PR), add it with
  ``repro lint --write-baseline`` and then **fill in the
  justification** — an entry without one is itself a finding (RS003);
* entries whose fingerprint no longer matches anything are reported as
  stale so the file shrinks back to empty over time.

Fingerprints hash ``(rule, path, symbol, key)`` and exclude line
numbers, so unrelated edits don't churn the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "write_baseline"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    symbol: str
    message: str
    justification: str

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "message": self.message,
            "justification": self.justification,
        }


class Baseline:
    """Set of accepted finding fingerprints."""

    def __init__(self, entries: Sequence[BaselineEntry] = (), path=None):
        self.entries = tuple(entries)
        self.path = path
        self._by_fp = {e.fingerprint: e for e in self.entries}

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self._by_fp

    def __len__(self) -> int:
        return len(self.entries)

    def unjustified(self) -> list[BaselineEntry]:
        return [e for e in self.entries if not e.justification.strip()]

    def stale(self, findings: Iterable[Finding]) -> list[BaselineEntry]:
        """Entries matching none of the given findings."""
        live = {f.fingerprint for f in findings}
        return [e for e in self.entries if e.fingerprint not in live]


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline(path=path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format (want version {_VERSION})"
        )
    entries = []
    for raw in data.get("entries", []):
        entries.append(
            BaselineEntry(
                fingerprint=str(raw["fingerprint"]),
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")),
                symbol=str(raw.get("symbol", "")),
                message=str(raw.get("message", "")),
                justification=str(raw.get("justification", "")),
            )
        )
    return Baseline(entries, path=path)


def write_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Serialise findings as baseline entries (justifications to fill).

    Justifications are written empty on purpose: the next ``repro
    lint`` run reports RS003 for each until a human writes down *why*
    the finding is acceptable — an unexplained baseline can't go green.
    """
    entries = tuple(
        BaselineEntry(
            fingerprint=f.fingerprint,
            rule=f.rule,
            path=f.path,
            symbol=f.symbol,
            message=f.message,
            justification="",
        )
        for f in sorted(findings, key=lambda f: f.sort_key)
    )
    payload = {
        "version": _VERSION,
        "entries": [e.as_dict() for e in entries],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return Baseline(entries, path=path)
