"""Determinism pass: RS101 wall clock, RS102 global RNG, RS103 set
iteration, RS104 salted ``hash()``.

The pipeline's headline guarantee — verdicts bit-identical across shard
counts, backends and fault injection — only holds while no code path
reads ambient nondeterminism. This pass flags the four ways it has
historically crept into ML pipelines:

* **RS101** — wall-clock reads (``time.time``, ``datetime.now``,
  ``perf_counter``...) anywhere outside the ``repro.obs`` layer, which
  owns the injectable clock. Timing belongs in spans; logic must never
  branch on the clock. ``time.sleep`` is pacing, not a read, and is
  not flagged.
* **RS102** — the process-global RNGs: any ``random.*`` module function
  and numpy's legacy ``np.random.*`` API (``rand``, ``seed``,
  ``choice``...). Only the explicit ``np.random.default_rng`` /
  ``Generator`` / ``SeedSequence`` family is allowed — a seeded
  generator is part of a function's arguments, global state is not.
* **RS103** — iterating a ``set`` (display, call, or comprehension) in
  the layers whose outputs feed serialization, hashing or verdicts
  (``core``/``netflow`` by default). Set order is salted per process;
  wrap in ``sorted(...)`` or suppress with the reason the order
  provably cannot escape.
* **RS104** — builtin ``hash()``: salted per process for ``str`` and
  ``bytes`` since PEP 456, so it must never feed seeds, shard keys or
  serialized output. Use ``zlib.crc32``/``hashlib`` or integer keys.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Module,
    Project,
    ScopeStack,
    collect_bindings,
    import_table,
    resolve_dotted,
)

__all__ = ["DeterminismPass"]

#: Functions that read the ambient clock. ``time.sleep`` is absent on
#: purpose: sleeping paces execution but returns no nondeterminism.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The only attributes of ``numpy.random`` whose *call* is allowed: the
#: explicit-Generator API. Everything else is the legacy global-state
#: or legacy-object API.
NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: ``random`` module attributes whose call does *not* touch the global
#: RNG: constructing an explicitly-seeded (or OS-entropy) instance.
STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


def _is_set_expr(node: ast.AST, scopes: ScopeStack) -> bool:
    """Does this expression certainly evaluate to a builtin set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset") and not scopes.is_local(
            node.func.id
        ):
            return True
    return False


class _ModuleVisitor(ast.NodeVisitor):
    """Scope-aware walk of one module for the RS10x rules."""

    def __init__(
        self,
        module: Module,
        config: LintConfig,
        findings: list[Finding],
    ):
        self.module = module
        self.config = config
        self.findings = findings
        self.imports = import_table(module)
        self.scopes = ScopeStack(collect_bindings(module.tree))
        self.symbols: list[str] = []
        self.clock_exempt = any(
            module.name == p or module.name.startswith(p + ".")
            for p in config.clock_exempt
        )
        self.set_scope = any(
            module.name == p or module.name.startswith(p + ".")
            for p in config.set_iter_scopes
        )

    # -- bookkeeping ----------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str, key: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
                symbol=".".join(self.symbols),
                key=key,
            )
        )

    def _enter_scope(self, node: ast.AST, name: str) -> None:
        self.scopes.push(collect_bindings(node))
        self.symbols.append(name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.symbols.pop()
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node, node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.symbols.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.symbols.pop()

    # -- the rules ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = resolve_dotted(node.func, self.scopes, self.imports)
        if dotted is not None:
            self._check_clock(node, dotted)
            self._check_rng(node, dotted)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and not self.scopes.is_bound("hash")
        ):
            self._report(
                "RS104",
                node,
                "builtin hash() is salted per process for str/bytes — "
                "use zlib.crc32/hashlib or integer keys for anything that "
                "feeds seeds, shard keys or serialized output",
                key="hash-builtin",
            )
        if self.set_scope and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple") and not self.scopes.is_local(
                node.func.id
            ):
                if len(node.args) == 1 and _is_set_expr(
                    node.args[0], self.scopes
                ):
                    self._report(
                        "RS103",
                        node,
                        f"{node.func.id}() over a set materialises salted "
                        "iteration order — use sorted(...) or justify with "
                        "a suppression",
                        key=f"set-into-{node.func.id}",
                    )
        self.generic_visit(node)

    def _check_clock(self, node: ast.Call, dotted: str) -> None:
        if self.clock_exempt or dotted not in WALL_CLOCK_CALLS:
            return
        self._report(
            "RS101",
            node,
            f"wall-clock read {dotted}() outside the obs layer — inject a "
            "clock or record timing through repro.obs spans",
            key=f"clock:{dotted}",
        )

    def _check_rng(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in STDLIB_RANDOM_ALLOWED:
                self._report(
                    "RS102",
                    node,
                    f"{dotted}() uses the process-global stdlib RNG — pass "
                    "an explicitly seeded random.Random or numpy Generator",
                    key=f"rng:{dotted}",
                )
        elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] not in NP_RANDOM_ALLOWED:
                self._report(
                    "RS102",
                    node,
                    f"np.random.{parts[2]}() is the legacy global-state "
                    "numpy RNG API — use np.random.default_rng(seed) and "
                    "pass the Generator",
                    key=f"rng:{dotted}",
                )

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        if self.set_scope and _is_set_expr(iter_node, self.scopes):
            self._report(
                "RS103",
                iter_node,
                "iteration over an unordered set — order is salted per "
                "process and must not reach serialization, hashing or "
                "verdicts; wrap in sorted(...) or suppress with a reason",
                key="set-iteration",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        # Comprehensions are their own scope; bindings of the targets
        # are visible to the element expression.
        bound: set[str] = set()
        for gen in node.generators:
            bound |= collect_bindings(gen.target)
        self.scopes.push(bound)
        for gen in node.generators:
            self._check_set_iteration(gen.iter)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.scopes.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


class DeterminismPass:
    """RS101/RS102/RS103/RS104 over every module of the package."""

    name = "determinism"
    scope = "module"
    rule_ids = ("RS101", "RS102", "RS103", "RS104")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self.run_module(module, config))
        return findings

    def run_module(self, module: Module, config: LintConfig) -> list[Finding]:
        if module.name.split(".")[0] != config.package:
            return []
        findings: list[Finding] = []
        _ModuleVisitor(module, config, findings).visit(module.tree)
        return findings
