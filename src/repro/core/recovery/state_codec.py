"""Bitwise-faithful JSON codec for engine state.

Checkpoints are JSON, not pickle: a snapshot must be inspectable,
diffable, and safe to load from an untrusted disk. The price is that
engine state is full of things JSON cannot carry natively — numpy
arrays, tuples, dicts with integer keys whose *insertion order* is
semantic (``OrderedDict`` bin buffers), RNG bit-generator state. The
tagged encoding here closes that gap while staying bit-exact:

* ``ndarray`` → ``{"__repro__": "ndarray", dtype, shape, base64 bytes}``
  — the raw buffer round-trips to the identical array;
* ``tuple`` → tagged item list (decode restores tuple-ness);
* ``dict`` with any non-string key → tagged key/value *pair list*, so
  integer keys and insertion order survive (a plain string-keyed dict
  stays a plain JSON object for readability);
* ``set`` → tagged sorted item list (engine sets are order-free);
* floats ride on Python's ``repr``-based JSON formatting, which
  round-trips every finite float64 exactly; ints are arbitrary
  precision in JSON, so 128-bit PCG64 state is safe.

On top of the value codec sit the engine-level capture/restore
functions for :class:`~repro.core.streaming.StreamingScrubber` and
:class:`~repro.core.parallel.engine.ShardedStreamingScrubber`. They are
deliberately *constructive*: restore validates that the live engine was
built with the same parameters the snapshot was taken under
(:class:`CheckpointConfigError` otherwise), then overwrites its mutable
state wholesale. Per-bin part lists are stored concatenated —
``FlowDataset.concat`` is plain ``np.concatenate``, so collapsing a
part list to one part is bitwise-neutral for every later concat.
"""

from __future__ import annotations

import base64
import dataclasses
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from repro.core.recovery.errors import CheckpointConfigError, CorruptSnapshotError

__all__ = [
    "encode_value",
    "decode_value",
    "capture_engine_state",
    "restore_engine_state",
    "capture_sharded_state",
    "restore_sharded_state",
]

_TAG = "__repro__"


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode a state value into JSON-safe form (see module docstring)."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        # Scalars keep their dtype by riding as 0-d arrays.
        return _encode_array(np.asarray(value))
    if isinstance(value, np.ndarray):
        return _encode_array(value)
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {_TAG: "set", "items": [encode_value(v) for v in sorted(value)]}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _TAG not in value:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _TAG: "map",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise TypeError(f"cannot encode {type(value).__name__} for checkpointing")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {k: decode_value(v) for k, v in value.items()}
        if tag == "ndarray":
            return _decode_array(value)
        if tag == "tuple":
            return tuple(decode_value(v) for v in value["items"])
        if tag == "set":
            return set(decode_value(v) for v in value["items"])
        if tag == "map":
            return {
                decode_value(k): decode_value(v) for k, v in value["items"]
            }
        raise CorruptSnapshotError(f"unknown state tag {tag!r}")
    return value


def _encode_array(array: np.ndarray) -> dict:
    # ascontiguousarray promotes 0-d to 1-d, so take the shape from the
    # original array — the buffer bytes are identical either way.
    contiguous = np.ascontiguousarray(array)
    return {
        _TAG: "ndarray",
        "dtype": str(contiguous.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(value: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(value["data"].encode("ascii"), validate=True)
        dtype = np.dtype(value["dtype"])
        shape = tuple(int(s) for s in value["shape"])
        array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    except (KeyError, ValueError, TypeError) as exc:
        raise CorruptSnapshotError(f"undecodable array in snapshot: {exc}") from exc
    return array.copy()  # frombuffer views are read-only


# ----------------------------------------------------------------------
# FlowDataset / registry helpers
# ----------------------------------------------------------------------
def _encode_flows(flows) -> dict:
    return encode_value({name: flows.column(name) for name in _schema_names()})


def _decode_flows(state: dict):
    from repro.netflow.dataset import FlowDataset

    return FlowDataset(decode_value(state))


def _schema_names() -> tuple:
    from repro.netflow.dataset import SCHEMA

    return tuple(SCHEMA)


def _capture_blackholes(registry) -> dict:
    open_entries = [
        [key[0].network, key[0].length, key[1], start]
        for key, start in registry._open.items()  # insertion order is semantic
    ]
    events = [
        [e.prefix.network, e.prefix.length, e.origin_asn, e.start, e.end]
        for e in registry._events
    ]
    return {
        "open": open_entries,
        "events": events,
        "last_time": registry._last_time,
    }


def _restore_blackholes(state: dict):
    from repro.bgp.blackhole import BlackholeEvent, BlackholeRegistry
    from repro.bgp.prefix import Prefix

    registry = BlackholeRegistry()
    for network, length, origin, start in state["open"]:
        key = (Prefix(network=int(network), length=int(length)), int(origin))
        registry._open[key] = int(start)
    for network, length, origin, start, end in state["events"]:
        registry._events.append(
            BlackholeEvent(
                prefix=Prefix(network=int(network), length=int(length)),
                origin_asn=int(origin),
                start=int(start),
                end=None if end is None else int(end),
            )
        )
    registry._last_time = (
        None if state["last_time"] is None else int(state["last_time"])
    )
    return registry


# ----------------------------------------------------------------------
# StreamingScrubber capture / restore
# ----------------------------------------------------------------------
def _engine_params(engine) -> dict:
    return {
        "window_days": engine.window_days,
        "bins_per_day": engine.bins_per_day,
        "min_flows_per_verdict": engine.min_flows_per_verdict,
        "label_grace_bins": engine.label_grace_bins,
        "config": encode_value(dataclasses.asdict(engine.config)),
    }


def capture_engine_state(engine) -> dict:
    """Capture the full mutable state of a :class:`StreamingScrubber`."""
    from repro.core.persistence import scrubber_to_dict

    return {
        "params": _engine_params(engine),
        "rng": encode_value(engine._rng.bit_generator.state),
        "blackholes": _capture_blackholes(engine._blackholes),
        "model": (
            None if engine._scrubber is None else scrubber_to_dict(engine._scrubber)
        ),
        "open_bins": [
            [int(b), _encode_flows(_concat(parts))]
            for b, parts in engine._open_bins.items()
        ],
        "pending_label": [
            [int(b), _encode_flows(flows)]
            for b, flows in engine._pending_label.items()
        ],
        "day_buffers": [
            [int(d), _encode_flows(_concat(parts))]
            for d, parts in engine._day_buffers.items()
        ],
        "last_trained_day": engine._last_trained_day,
        "horizon": engine._horizon,
        "counted_bins": sorted(engine._counted_bins),
        "counted_verdicts": [list(t) for t in sorted(engine._counted_verdicts)],
        "drift": engine._drift.to_state(),
    }


def restore_engine_state(engine, state: dict) -> None:
    """Overwrite ``engine``'s mutable state from a captured snapshot.

    The engine must have been constructed with the same parameters the
    snapshot was taken under; anything else raises
    :class:`CheckpointConfigError` rather than resuming into a stream
    that matches neither the old run nor a fresh one.
    """
    from repro.core.drift import DriftTracker
    from repro.core.persistence import scrubber_from_dict

    expected = _engine_params(engine)
    if state["params"] != expected:
        raise CheckpointConfigError(
            "snapshot was taken under different engine parameters: "
            f"snapshot={state['params']!r} engine={expected!r}"
        )
    engine._rng.bit_generator.state = decode_value(state["rng"])
    engine._blackholes = _restore_blackholes(state["blackholes"])
    engine._scrubber = (
        None if state["model"] is None else scrubber_from_dict(state["model"])
    )
    engine._open_bins = OrderedDict(
        (int(b), [_decode_flows(flows)]) for b, flows in state["open_bins"]
    )
    engine._pending_label = OrderedDict(
        (int(b), _decode_flows(flows)) for b, flows in state["pending_label"]
    )
    engine._day_buffers = OrderedDict(
        (int(d), [_decode_flows(flows)]) for d, flows in state["day_buffers"]
    )
    engine._last_trained_day = (
        None if state["last_trained_day"] is None else int(state["last_trained_day"])
    )
    engine._horizon = int(state["horizon"])
    engine._counted_bins = set(int(b) for b in state["counted_bins"])
    engine._counted_verdicts = set(
        (int(b), int(t)) for b, t in state["counted_verdicts"]
    )
    engine._drift = DriftTracker.from_state(state["drift"])


def _concat(parts: list):
    from repro.netflow.dataset import FlowDataset

    return FlowDataset.concat(parts)


# ----------------------------------------------------------------------
# ShardedStreamingScrubber capture / restore
# ----------------------------------------------------------------------
def _plan_params(plan) -> dict:
    return {
        "n_shards": plan.n_shards,
        "prefix_bits": plan.prefix_bits,
        "pins": [
            [prefix.network, prefix.length, shard] for prefix, shard in plan._pins
        ],
    }


def capture_sharded_state(engine) -> dict:
    """Capture a sharded engine: coordinator, plan, agg mode, shadow."""
    params = engine._sketch_params
    return {
        "agg": "exact" if params is None else "sketch",
        "sketch_params": None if params is None else dataclasses.asdict(params),
        # Informational only: the worker transport shapes no verdict, so
        # a run may resume under a different --ipc than it was captured
        # with (restore does not validate it).
        "ipc": engine.ipc_mode,
        "plan": _plan_params(engine.plan),
        "coordinator": capture_engine_state(engine._inner),
        "shadow": (
            None if engine._shadow is None else capture_engine_state(engine._shadow)
        ),
    }


def restore_sharded_state(engine, state: dict) -> None:
    """Restore a sharded engine from :func:`capture_sharded_state` output.

    Aggregation mode, sketch parameters, and shard plan must match the
    live engine — they shape the verdict stream. The restored model is
    *not* pushed to workers here; clearing ``_broadcast_model`` makes
    the next classify re-broadcast it through the normal path (which
    also rebuilds the sketch-mode coordinator assembler).
    """
    params = engine._sketch_params
    agg = "exact" if params is None else "sketch"
    sketch_params = None if params is None else dataclasses.asdict(params)
    if state["agg"] != agg or state["sketch_params"] != sketch_params:
        raise CheckpointConfigError(
            f"snapshot aggregation mode ({state['agg']!r}, "
            f"{state['sketch_params']!r}) does not match the engine "
            f"({agg!r}, {sketch_params!r})"
        )
    if state["plan"] != _plan_params(engine.plan):
        raise CheckpointConfigError(
            "snapshot shard plan does not match the engine: "
            f"snapshot={state['plan']!r} engine={_plan_params(engine.plan)!r}"
        )
    restore_engine_state(engine._inner, state["coordinator"])
    if engine._shadow is not None:
        if state["shadow"] is None:
            raise CheckpointConfigError(
                "engine has an equivalence shadow but the snapshot was "
                "taken without one; the shadow cannot catch up mid-stream"
            )
        restore_engine_state(engine._shadow, state["shadow"])
    engine._broadcast_model = None
    engine._coord_assembler = None
