"""Experiment E-R1: the rule-mining funnel (paper §5.1.1).

Reproduces the three-stage reduction the paper reports: FP-Growth with
min confidence 0.8 yields thousands of association rules; dropping
non-blackhole consequents leaves a fraction; Algorithm 1 minimisation
reduces that to a manageable curated set (paper: 7859 -> 1469 -> 367).
Absolute counts scale with corpus size; the *funnel shape* (large ->
medium -> small, each stage a significant reduction) is the target.
"""

from __future__ import annotations

from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import mine_rules
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import DAYS_BY_SCALE, balanced_corpus
from repro.ixp.profiles import ALL_PROFILES
from repro.netflow.dataset import FlowDataset


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days = DAYS_BY_SCALE[scale]
    flows = FlowDataset.concat(
        [balanced_corpus(p, n_days).flows for p in ALL_PROFILES]
    )
    mining = mine_rules(flows, min_confidence=0.8)
    minimized = minimize_rules(mining.blackhole_rules)

    result = ExperimentResult(experiment="rule-mining-funnel")
    result.rows = [
        {"stage": "fp-growth rules (c >= 0.8)", "rules": len(mining.all_rules)},
        {"stage": "blackhole-consequent only", "rules": len(mining.blackhole_rules)},
        {"stage": "after Algorithm 1 (Lc=Ls=0.01)", "rules": len(minimized)},
    ]
    result.notes["n_transactions"] = mining.n_transactions
    result.notes["n_frequent_itemsets"] = mining.n_frequent_itemsets
    result.notes["stage1_reduction"] = (
        1.0 - len(mining.blackhole_rules) / max(len(mining.all_rules), 1)
    )
    result.notes["stage2_reduction"] = (
        1.0 - len(minimized) / max(len(mining.blackhole_rules), 1)
    )
    return result
