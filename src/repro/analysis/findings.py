"""The finding model: what a lint pass reports and how it is identified.

A :class:`Finding` is one violation of a project contract, anchored to
a file/line/column and carrying a stable rule id from the catalogue
below. Two identities matter:

* the *location* (``path:line:col``) — what the human reads; it moves
  freely as code is edited;
* the *fingerprint* — a content hash of ``(rule, path, symbol, key)``
  deliberately **excluding** the line number, so a baseline entry keeps
  matching while unrelated edits shift the file around it.

``key`` is a short pass-chosen slug naming the violating construct
(e.g. ``"clock:time.perf_counter"``); it defaults to the message.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "RULES", "rule_exists"]

#: The rule catalogue: every id a pass (or the framework itself) can
#: emit, with the one-line description shown in ``repro lint`` output
#: and documented in docs/ANALYSIS.md. Suppression comments and
#: ``--rules`` filters are validated against this table.
RULES: dict[str, str] = {
    # framework
    "RS001": "malformed suppression (missing reason or unknown rule id)",
    "RS002": "unused suppression (no finding on the suppressed line)",
    "RS003": "baseline entry without a justification",
    # determinism
    "RS101": "wall-clock read outside repro.obs (time.time, datetime.now, perf_counter, ...)",
    "RS102": "unseeded / legacy global RNG (random.* module functions, np.random legacy API)",
    "RS103": "iteration over an unordered set in a serialization-adjacent layer",
    "RS104": "builtin hash() is salted per process for str/bytes; use a stable hash",
    # shard safety
    "RS201": "module-global write reachable from shard-worker code",
    "RS202": "class-level attribute write reachable from shard-worker code",
    "RS203": "closure (nonlocal) write reachable from shard-worker code",
    "RS204": "raw shared-memory buffer write outside the IPC protocol modules",
    # layering
    "RS301": "import violates the ARCHITECTURE.md layer contract",
    "RS302": "third-party import outside the dependency allowlist",
    # obs names
    "RS401": "obs name catalogued but never emitted/referenced by the pipeline",
    "RS402": "emitted metric/span name bypasses the obs/names.py catalogue",
    "RS403": "emitted metric/span name has no docs/METRICS.md row",
    "RS404": "instrument kind does not match the name's catalogue prefix",
    # durability
    "RS501": "bare write in a recovery-critical module (bypasses durable_write)",
    "RS502": "os.rename/os.replace in a recovery-critical module without fsync discipline",
    # resource lifecycle (CFG dataflow)
    "RS601": "acquired resource may leak on a normal path out of the function",
    "RS602": "acquired resource leaks on an exception path (no cleanup handler)",
    "RS603": "partial __init__: a raise after acquisition strands the resource on self",
    "RS604": "resource ownership transferred to a class that defines no release method",
    # hot-path discipline
    "RS701": "per-flow/per-row Python loop in a module declared hot",
    "RS702": "list-append accumulation feeding a numpy conversion — preallocate or vectorise",
    "RS703": "np.concatenate/append/stack inside a loop — quadratic copying; batch instead",
}


def rule_exists(rule_id: str) -> bool:
    return rule_id in RULES


@dataclass(frozen=True)
class Finding:
    """One contract violation at a concrete source location."""

    rule: str
    path: str  # posix, relative to the linted root
    line: int
    col: int
    message: str
    symbol: str = ""  # enclosing function/class qualname, if any
    key: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        payload = "|".join(
            (self.rule, self.path, self.symbol, self.key or self.message)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where} {self.rule} {self.message}{sym}"
