"""Rendering tagging rules as deployable filters.

The paper positions accepted rules as ACLs "applied directly to the
hardware" for dropping, shaping, monitoring or re-routing (§5, §5.1).
This module renders a :class:`~repro.core.rules.model.TaggingRule` into
two concrete formats:

* **BGP FlowSpec** (RFC 8955) textual NLRI — the natural dissemination
  mechanism at an IXP route server: a match on destination prefix,
  protocol, source port, destination port and packet length, plus a
  ``traffic-rate 0`` (discard) or rate-limit action;
* a generic **ACL line** in the familiar firewall style, for devices
  without FlowSpec support.

Negated port sets (``~{...}``) exceed FlowSpec's match semantics when
large; the renderer inverts small sets into explicit ranges and
otherwise omits the component (conservative: match more, not less),
flagging the rule as widened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.bgp.prefix import Prefix
from repro.core.rules.model import PortMatch, TaggingRule
from repro.netflow.fields import PROTOCOL_NAMES

#: Above this many values, a negated set is not expanded into ranges.
MAX_INVERTED_RANGES = 16


@dataclass(frozen=True)
class FlowSpecRule:
    """One rendered FlowSpec rule."""

    nlri: str
    action: str
    #: True when a negated port set could not be represented exactly and
    #: the match was widened (the filter matches a superset).
    widened: bool
    source_rule_id: str

    def render(self) -> str:
        suffix = "  # widened match" if self.widened else ""
        return f"{self.nlri} then {self.action}{suffix}"


def _ranges_from_negation(match: PortMatch) -> Optional[list[tuple[int, int]]]:
    """Invert a negated port set into inclusive ranges, if small enough."""
    excluded = sorted(match.values)
    ranges: list[tuple[int, int]] = []
    low = 0
    for port in excluded:
        if port > low:
            ranges.append((low, port - 1))
        low = port + 1
    if low <= 0xFFFF:
        ranges.append((low, 0xFFFF))
    if len(ranges) > MAX_INVERTED_RANGES:
        return None
    return ranges


def _port_component(name: str, match: Optional[PortMatch]) -> tuple[Optional[str], bool]:
    """FlowSpec component text for a port match; (text, widened)."""
    if match is None:
        return None, False
    if not match.negated:
        values = sorted(match.values)
        return f"{name} " + "|".join(f"={v}" for v in values), False
    ranges = _ranges_from_negation(match)
    if ranges is None:
        return None, True  # widen: drop the component entirely
    parts = [f"={lo}" if lo == hi else f">={lo}&<={hi}" for lo, hi in ranges]
    return f"{name} " + "|".join(parts), False


def to_flowspec(
    rule: TaggingRule,
    destination: Optional[Prefix] = None,
    rate_limit_bps: Optional[int] = None,
) -> FlowSpecRule:
    """Render one tagging rule as a FlowSpec rule.

    ``destination`` scopes the filter to a victim prefix (a verdict's
    target); ``rate_limit_bps`` switches the action from discard to a
    rate limit.
    """
    components: list[str] = []
    widened = False
    if destination is not None:
        components.append(f"match destination {destination}")
    else:
        components.append("match")
    if rule.protocol is not None:
        components.append(f"protocol ={rule.protocol}")
    text, was_widened = _port_component("source-port", rule.port_src)
    widened |= was_widened
    if text:
        components.append(text)
    text, was_widened = _port_component("destination-port", rule.port_dst)
    widened |= was_widened
    if text:
        components.append(text)
    if rule.packet_size is not None:
        low, high = rule.packet_size
        components.append(f"packet-length >={low + 1}&<={high}")
    action = (
        "traffic-rate 0"
        if rate_limit_bps is None
        else f"traffic-rate {rate_limit_bps}"
    )
    return FlowSpecRule(
        nlri=" ".join(components),
        action=action,
        widened=widened,
        source_rule_id=rule.rule_id,
    )


def to_acl_line(rule: TaggingRule, action: str = "deny") -> str:
    """Render one tagging rule as a generic firewall ACL line."""
    protocol = (
        PROTOCOL_NAMES.get(rule.protocol, str(rule.protocol)).lower()
        if rule.protocol is not None
        else "ip"
    )
    def port_text(match: Optional[PortMatch]) -> str:
        if match is None:
            return "any"
        body = ",".join(str(v) for v in sorted(match.values))
        return f"not-in {{{body}}}" if match.negated else f"eq {{{body}}}"

    parts = [
        action,
        protocol,
        "from any",
        f"src-port {port_text(rule.port_src)}",
        "to any",
        f"dst-port {port_text(rule.port_dst)}",
    ]
    if rule.packet_size is not None:
        parts.append(f"length {rule.packet_size[0] + 1}-{rule.packet_size[1]}")
    parts.append(f"; rule {rule.rule_id} conf {rule.confidence:.3f}")
    return " ".join(parts)


def export_flowspec(
    rules: Iterable[TaggingRule],
    destination: Optional[Prefix] = None,
    rate_limit_bps: Optional[int] = None,
) -> list[FlowSpecRule]:
    """Render a rule collection as FlowSpec, skipping nothing."""
    return [
        to_flowspec(rule, destination=destination, rate_limit_bps=rate_limit_bps)
        for rule in rules
    ]


def export_acl(rules: Iterable[TaggingRule], action: str = "deny") -> list[str]:
    """Render a rule collection as ACL lines."""
    return [to_acl_line(rule, action=action) for rule in rules]
