"""Scenario registry + conductor: build a stream, drive a real engine.

A :class:`Scenario` is a named builder: ``build(seed, scale)`` renders
the full operational stream (benign load from a
:class:`~repro.scenarios.workload.WorkloadManager`, injected attacks,
BGP blackhole updates) plus its oracle ground truth into a
:class:`ScenarioSpec`. The conductor then:

1. warm-starts a scrubber on a seeded bootstrap corpus (cached per
   seed — scenario streams never train the initial model, so detection
   scores measure the *online* pipeline, not the bootstrap);
2. streams the spec chunk-by-chunk through a real
   :class:`~repro.core.parallel.engine.ShardedStreamingScrubber` with
   whatever shard count / backend / aggregation mode the caller picked;
3. scores the verdict stream against the ground truth and evaluates
   the scenario's named checks into a JSON-safe scorecard.

The scorecard is deliberately free of execution details (shard count,
backend, wall time): with exact aggregation the verdict stream is
bit-identical for any sharding, so the scorecard is too — the
acceptance property the tests pin. Execution details travel separately
in :attr:`ScenarioResult.execution`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro import obs
from repro.core.labeling.balancer import balance
from repro.core.parallel import ShardedStreamingScrubber
from repro.core.scrubber import IXPScrubber, ScrubberConfig, TargetVerdict
from repro.netflow.dataset import FlowDataset
from repro.obs import names
from repro.scenarios.oracle import Check, GroundTruth, evaluate_checks, score_verdicts
from repro.scenarios.workload import BIN_SECONDS, PoissonWorkloadManager
from repro.traffic.attacks import AttackEvent, AttackGenerator
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import vector_by_name

__all__ = [
    "ScenarioSpec",
    "Scenario",
    "ScenarioResult",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "run_scenario",
    "scorecard_json",
    "SCORECARD_SCHEMA_VERSION",
]

#: Bumped whenever the scorecard layout changes incompatibly.
SCORECARD_SCHEMA_VERSION = 1

#: Model configuration every scenario engine runs. Same compact XGB as
#: the stream CLI and the golden traces, but with ``min_child_weight``
#: sized for scenario retrains: one scenario day balances down to
#: ~50-100 records, and at the logistic loss's p=0.5 starting point a
#: record contributes hessian <= 0.25 — the default threshold of 10
#: would forbid every split and freeze retrained models at a constant
#: 0.5 score.
ENGINE_CONFIG = ScrubberConfig(
    model="XGB", model_params={"n_estimators": 10, "min_child_weight": 2.0}
)

#: SeedSequence domain tag for conductor-owned randomness.
_SEED_TAG = 0x5CE7

#: Vectors the bootstrap corpus trains on (scenarios may exclude some
#: to stage a genuinely novel vector mid-stream).
BOOTSTRAP_VECTORS = ("DNS", "NTP", "LDAP", "SSDP", "chargen", "SNMP", "memcached")


def derive_seed(seed: int, tag: int) -> int:
    """A decorrelated 32-bit child seed for component ``tag``."""
    return int(np.random.SeedSequence([_SEED_TAG, seed, tag]).generate_state(1)[0])


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully rendered scenario stream plus its oracle inputs."""

    name: str
    bins_per_day: int
    #: Exclusive last bin of the stream.
    n_bins: int
    #: Time-sorted flow stream (benign + attacks).
    flows: FlowDataset
    #: Time-sorted BGP updates (blackhole announcements/withdrawals).
    updates: tuple
    truth: GroundTruth
    checks: tuple[Check, ...]
    #: StreamingScrubber keyword overrides (window_days, ...).
    engine: Mapping[str, object] = field(default_factory=dict)
    #: JSON-safe workload statistics echoed into the scorecard.
    workload: Mapping[str, object] = field(default_factory=dict)
    #: Bootstrap options (e.g. ``exclude_vectors``) for the warm-start
    #: model this scenario expects.
    bootstrap: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Scenario:
    """A named, registered scenario builder.

    ``conduct`` overrides *how* the spec is driven: it receives the
    spec and a zero-argument engine factory (each call returns a fresh,
    warm-started engine wired to the run's registry) and returns
    ``(verdicts, extra_metrics)``. The default conduction drives one
    engine straight through; recovery scenarios use the hook to crash
    and resume mid-stream. ``extra_metrics`` must be JSON-safe floats —
    they join the checkable metrics and the scorecard's ``conduct``
    section.
    """

    name: str
    summary: str
    build: Callable[[int, float], ScenarioSpec]
    conduct: Optional[
        Callable[[ScenarioSpec, Callable[[], ShardedStreamingScrubber]],
                 tuple[list, dict]]
    ] = None


@dataclass(frozen=True)
class ScenarioResult:
    """One conductor run: the invariant scorecard + run details."""

    #: Deterministic, shard/backend-invariant scoring payload.
    scorecard: dict
    #: How this particular run executed (varies across runs by design).
    execution: dict


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> tuple[Scenario, ...]:
    return tuple(_REGISTRY[n] for n in scenario_names())


# ----------------------------------------------------------------------
# Bootstrap: the warm-start model.
# ----------------------------------------------------------------------

_BOOTSTRAP_CACHE: dict[tuple, IXPScrubber] = {}


def _bootstrap_corpus(seed: int, exclude_vectors: tuple[str, ...]) -> FlowDataset:
    """A labeled mixed corpus: generic benign load + known attacks."""
    manager = PoissonWorkloadManager(
        seed=derive_seed(seed, 10), active_users=160.0, rate_per_user=0.6,
        n_targets=96,
    )
    manager.start()
    parts = [manager.collect(48)]
    manager.stop()

    rng = np.random.default_rng(np.random.SeedSequence([_SEED_TAG, seed, 11]))
    generator = AttackGenerator(ReflectorPool(region=9, seed=derive_seed(seed, 12)))
    vectors = [v for v in BOOTSTRAP_VECTORS if v not in exclude_vectors]
    victim_base = 0x0A7B0000  # 10.123.0.0/16 — disjoint from benign pools
    for i, vector_name in enumerate(vectors * 2):
        start_bin = (i * 5) % 40
        event = AttackEvent(
            victim=victim_base + i + 1,
            vectors=(vector_by_name(vector_name),),
            start=start_bin * BIN_SECONDS,
            end=(start_bin + 8) * BIN_SECONDS,
            flows_per_minute=45.0,
        )
        flows = generator.generate(rng, event)
        parts.append(flows.with_blackhole(np.ones(len(flows), dtype=bool)))
    return FlowDataset.concat(parts).sort_by_time()


def bootstrap_scrubber(
    seed: int, exclude_vectors: tuple[str, ...] = ()
) -> IXPScrubber:
    """The warm-start model for ``seed`` (cached per process)."""
    key = (seed, tuple(exclude_vectors))
    cached = _BOOTSTRAP_CACHE.get(key)
    if cached is None:
        corpus = _bootstrap_corpus(seed, tuple(exclude_vectors))
        balanced = balance(
            corpus,
            np.random.default_rng(np.random.SeedSequence([_SEED_TAG, seed, 13])),
        )
        cached = IXPScrubber(ENGINE_CONFIG).fit(balanced.flows)
        _BOOTSTRAP_CACHE[key] = cached
    return cached


# ----------------------------------------------------------------------
# Conduction.
# ----------------------------------------------------------------------


def _drive(
    engine: ShardedStreamingScrubber, spec: ScenarioSpec, chunk_bins: int = 8
) -> list[TargetVerdict]:
    """Stream the spec through the engine in bin chunks; no clocks."""
    flows = spec.flows
    bins = flows.time // BIN_SECONDS
    updates = list(spec.updates)
    verdicts: list[TargetVerdict] = []
    u = 0
    for chunk_start in range(0, spec.n_bins, chunk_bins):
        mask = (bins >= chunk_start) & (bins < chunk_start + chunk_bins)
        limit = (chunk_start + chunk_bins) * BIN_SECONDS
        chunk_updates = []
        while u < len(updates) and updates[u].time < limit:
            chunk_updates.append(updates[u])
            u += 1
        verdicts.extend(engine.ingest(flows.select(mask), chunk_updates))
    verdicts.extend(engine.flush())
    return verdicts


def _conduct_plain(
    spec: ScenarioSpec, make_engine: Callable[[], ShardedStreamingScrubber]
) -> tuple[list[TargetVerdict], dict]:
    """Default conduction: one engine, straight through the stream."""
    engine = make_engine()
    try:
        return _drive(engine, spec), {}
    finally:
        engine.close()


def run_scenario(
    name: str,
    seed: int = 7,
    scale: float = 1.0,
    shards: int = 1,
    backend: str = "serial",
    agg: str = "exact",
    sketch_params=None,
    backend_options: Optional[dict] = None,
) -> ScenarioResult:
    """Build, drive and score one scenario end to end.

    With ``agg='exact'`` (the default) the returned scorecard is
    bit-identical for any ``shards``/``backend`` combination — including
    supervised runs under a fault plan — because the engine's verdict
    stream is. ``agg='sketch'`` trades that for bounded memory: still
    deterministic for a fixed configuration, but scored on approximate
    counts.
    """
    scenario = get_scenario(name)
    registry = obs.MetricRegistry()
    with obs.use_registry(registry):
        obs.counter(names.C_SCENARIO_RUNS).inc()
        with obs.span(names.SPAN_SCENARIO_BUILD):
            spec = scenario.build(seed, scale)
    warm = bootstrap_scrubber(seed, **dict(spec.bootstrap))

    def make_engine() -> ShardedStreamingScrubber:
        engine = ShardedStreamingScrubber(
            config=ENGINE_CONFIG,
            n_shards=shards,
            backend=backend,
            backend_options=dict(backend_options or {}),
            equivalence_check=False,
            agg=agg,
            sketch_params=sketch_params,
            registry=registry,
            bins_per_day=spec.bins_per_day,
            seed=derive_seed(seed, 20),
            **dict(spec.engine),
        )
        engine.warm_start(warm)
        return engine

    conduct = scenario.conduct or _conduct_plain
    with obs.use_registry(registry):
        with obs.span(names.SPAN_SCENARIO_RUN):
            verdicts, conduct_metrics = conduct(spec, make_engine)
    snap = obs.snapshot(registry)

    with obs.use_registry(registry):
        with obs.span(names.SPAN_SCENARIO_SCORE):
            metrics, attack_details = score_verdicts(verdicts, spec.truth)
            # Coordinator-side engine counters are shard-invariant and
            # may be referenced by checks (e.g. retrain storms).
            counters = {c["name"]: int(c["value"]) for c in snap["counters"]}
            retrainings = counters.get(names.C_STREAMING_RETRAININGS, 0)
            drift_trips = counters.get(names.C_STREAMING_DRIFT_TRIPS, 0)
            checkable = dict(metrics)
            checkable["retrainings"] = retrainings
            checkable["drift_trips"] = drift_trips
            checkable.update(conduct_metrics)
            check_results, passed = evaluate_checks(spec.checks, checkable)
        n_failed = sum(1 for r in check_results if not r["passed"])
        if n_failed:
            obs.counter(names.C_SCENARIO_CHECKS_FAILED).inc(n_failed)

    scorecard = {
        "schema_version": SCORECARD_SCHEMA_VERSION,
        "scenario": name,
        "seed": seed,
        "scale": scale,
        "agg": agg,
        "stream": {
            "bins": spec.n_bins,
            "bins_per_day": spec.bins_per_day,
            "flows": len(spec.flows),
            "updates": len(spec.updates),
        },
        "workload": dict(spec.workload),
        "truth": {
            "attacks": len(spec.truth.attacks),
            "attacked_targets": len(spec.truth.attacked_targets()),
            "benign_targets": len(spec.truth.benign_targets),
        },
        "engine": {"retrainings": retrainings, "drift_trips": drift_trips},
        "conduct": dict(conduct_metrics),
        "metrics": metrics,
        "attacks": attack_details,
        "checks": check_results,
        "passed": passed,
    }
    execution = {
        "shards": shards,
        "backend": backend,
        "verdicts": len(verdicts),
    }
    return ScenarioResult(scorecard=scorecard, execution=execution)


def scorecard_json(scorecard: dict) -> str:
    """Canonical JSON rendering (sorted keys, 2-space indent)."""
    return json.dumps(scorecard, sort_keys=True, indent=2, allow_nan=False)
