"""Experiment E-F13: learning new DDoS vectors (paper Fig. 13).

Uses the long IXP-SE corpus with a vector-availability schedule: SNMP,
SSDP and memcached only start being abused (and blackholed) partway
through the observation period. Two series per vector:

* the WoE of the vector's source port over time — expected to rise from
  ~0 once the vector appears in blackholing traffic (HTTP, the
  reference, stays negative throughout);
* the F(beta=0.5) of an incrementally trained XGB model on a fixed
  late test set, restricted to that vector's records — expected to rise
  with the WoE.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import aggregate
from repro.core.labeling.balancer import balance
from repro.core.models.metrics import fbeta_score
from repro.core.models.pipeline import make_pipeline
from repro.experiments.attribution import vector_masks
from repro.experiments.common import ExperimentResult, cached, check_scale
from repro.ixp.profiles import IXP_SE
from repro.netflow import fields

#: The vectors whose introduction Fig. 13 tracks, with their ports.
TRACKED = {"SNMP": fields.PORT_SNMP, "SSDP": fields.PORT_SSDP, "memcached": fields.PORT_MEMCACHED}

#: Reference service with persistent negative WoE.
REFERENCE_PORT = fields.PORT_HTTP

#: (corpus days, first-seen day per vector, warmup days, step days).
_SETUP = {
    "small": (32, {"SNMP": 8, "SSDP": 11, "memcached": 14}, 4, 2),
    "paper": (90, {"SNMP": 20, "SSDP": 30, "memcached": 45}, 10, 5),
}

#: Vector popularity for the Fig. 13 scenario: the tracked vectors come
#: in heavy waves at this vantage point (as SNMP/SSDP/memcached did in
#: reality), so their arrival is measurable within the compressed
#: corpus.
_FIG13_POPULARITY_BOOST = {"SNMP": 0.14, "SSDP": 0.12, "memcached": 0.10}


def _corpus(scale: str):
    n_days, first_seen_days, _, _ = _SETUP[scale]
    profile = IXP_SE
    first_seen = {
        name: day * profile.seconds_per_day for name, day in first_seen_days.items()
    }

    def builder():
        from repro.ixp.fabric import IXPFabric
        from repro.traffic.workload import DEFAULT_VECTOR_POPULARITY, WorkloadGenerator

        # Explicit global popularity: the tracked vectors must exist at
        # this site (site-specific popularity may drop minor vectors)
        # and arrive in measurable waves.
        popularity = dict(DEFAULT_VECTOR_POPULARITY)
        popularity.update(_FIG13_POPULARITY_BOOST)
        fabric = IXPFabric(profile)
        generator = WorkloadGenerator(
            fabric,
            vector_first_seen=first_seen,
            vector_popularity=popularity,
            # Controlled study: keep vector shares fixed so the arrival
            # effect is not confounded by the popularity random walk.
            popularity_walk_sigma=0.0,
        )
        capture = generator.generate(0, n_days)
        balanced = balance(capture.labeled_flows(), np.random.default_rng(profile.seed))
        return aggregate(balanced.flows)

    return cached(("fig13-corpus", scale, "no-walk"), builder)


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days, first_seen_days, warmup, step = _SETUP[scale]
    profile = IXP_SE
    data = _corpus(scale)
    bins_per_day = profile.bins_per_day
    days = data.bins // bins_per_day

    result = ExperimentResult(experiment="fig13-new-vectors")

    # Fixed late test period: the final quarter of the corpus.
    test_start = int(n_days * 0.75)
    test = data.select(days >= test_start)
    test_masks = vector_masks(
        test, vectors=tuple(TRACKED) if "SNMP" in TRACKED else tuple(TRACKED)
    )
    test_labels = test.labels.astype(int)

    checkpoints = list(range(warmup, test_start + 1, step))
    woe_series: dict[str, list[float]] = {name: [] for name in TRACKED}
    woe_series["HTTP"] = []
    fbeta_series: dict[str, list[float]] = {name: [] for name in TRACKED}

    for checkpoint in checkpoints:
        window = data.select(days < checkpoint)
        if len(window) < 20 or len(np.unique(window.labels)) < 2:
            for name in TRACKED:
                woe_series[name].append(0.0)
                fbeta_series[name].append(float("nan"))
            woe_series["HTTP"].append(0.0)
            continue
        woe = WoEEncoder().fit(window)
        table = woe.table("src_port")
        for name, port in TRACKED.items():
            woe_series[name].append(table.encode_value(port))
        woe_series["HTTP"].append(table.encode_value(REFERENCE_PORT))

        pipeline = make_pipeline("XGB")
        matrix = assemble(window, woe)
        pipeline.fit(matrix.X, matrix.y)
        predictions = pipeline.predict(assemble(test, woe).X)
        for name in TRACKED:
            mask = test_masks[name]
            if mask.sum() >= 5:
                fbeta_series[name].append(
                    fbeta_score(test_labels[mask], predictions[mask])
                )
            else:
                fbeta_series[name].append(float("nan"))

    for name in list(TRACKED) + ["HTTP"]:
        result.series[f"woe/{name}"] = (list(checkpoints), woe_series[name])
    for name in TRACKED:
        result.series[f"fbeta/{name}"] = (list(checkpoints), fbeta_series[name])
        first_day = first_seen_days[name]
        before = [
            w for c, w in zip(checkpoints, woe_series[name]) if c <= first_day
        ]
        after = [
            w for c, w in zip(checkpoints, woe_series[name]) if c > first_day + step
        ]
        result.rows.append(
            {
                "vector": name,
                "first_seen_day": first_day,
                "woe_before": float(np.mean(before)) if before else 0.0,
                "woe_after": float(np.mean(after)) if after else float("nan"),
                "final_fbeta": next(
                    (v for v in reversed(fbeta_series[name]) if not np.isnan(v)),
                    float("nan"),
                ),
            }
        )
    result.rows.append(
        {
            "vector": "HTTP (reference)",
            "first_seen_day": 0,
            "woe_before": float("nan"),
            "woe_after": float(np.mean(woe_series["HTTP"])),
            "final_fbeta": float("nan"),
        }
    )
    result.notes["http_woe_mean"] = float(np.mean(woe_series["HTTP"]))
    return result
