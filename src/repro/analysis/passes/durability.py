"""Durability pass: RS501 bare writes, RS502 bare renames on
recovery-critical paths.

Crash safety in this project is a discipline, not a hope: every file
the recovery subsystem may need after a crash — snapshots, manifests,
persisted models — must be produced by the one sanctioned
temp + fsync + rename idiom in :mod:`repro.core.recovery.durable`.
A bare ``open(path, "w")`` (or ``Path.write_text``) in those layers is
a torn-write bug waiting for a power cut: the rename-less write can be
half on disk when the machine dies, and the reader has no manifest to
detect it. This pass makes the discipline machine-checked:

* **RS501** — a write-capable file open (``open`` with a mode
  containing ``w``/``a``/``x``/``+``) or a ``write_text`` /
  ``write_bytes`` call inside a *durable module*
  (``config.durable_modules``) that is not one of the sanctioned
  writer modules (``config.durable_writers``).
* **RS502** — a direct ``os.rename`` / ``os.replace`` in a durable
  module outside the sanctioned writers: half the idiom — rename
  without the fd fsync before and the directory fsync after — is
  exactly the bug the idiom exists to prevent.

Append-only files (the verdict journal) implement their own
fsync-per-append discipline, so the journal module is itself a
sanctioned writer. Suppressions follow the usual
``# repro: lint-ignore[RS501] reason`` escape hatch.
"""

from __future__ import annotations

import ast

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Module,
    Project,
    ScopeStack,
    collect_bindings,
    import_table,
    resolve_dotted,
)

__all__ = ["DurabilityPass"]

#: Attribute calls that write a whole file in one go.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: Dotted calls that atomically move a file without any fsync.
_RENAME_CALLS = frozenset({"os.rename", "os.replace"})

#: ``open`` mode characters that make the handle write-capable.
_WRITE_MODE_CHARS = frozenset("wax+")


def _literal_mode(node: ast.Call) -> str | None:
    """The mode argument of an ``open`` call, when it is a literal."""
    mode_node = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None  # dynamic mode: cannot tell, stay silent


class _ModuleVisitor(ast.NodeVisitor):
    """Scope-aware walk of one durable module for the RS50x rules."""

    def __init__(self, module: Module, config: LintConfig, findings: list[Finding]):
        self.module = module
        self.config = config
        self.findings = findings
        self.imports = import_table(module)
        self.scopes = ScopeStack(collect_bindings(module.tree))
        self.symbols: list[str] = []

    def _report(self, rule: str, node: ast.AST, message: str, key: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
                symbol=".".join(self.symbols),
                key=key,
            )
        )

    def _enter_scope(self, node: ast.AST, name: str) -> None:
        self.scopes.push(collect_bindings(node))
        self.symbols.append(name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.symbols.pop()
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node, node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.symbols.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.symbols.pop()

    # -- the rules ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_open(node)
        self._check_write_method(node)
        self._check_rename(node)
        self.generic_visit(node)

    def _check_open(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and not self.scopes.is_bound("open")
        ):
            return
        mode = _literal_mode(node)
        if mode is None or not (_WRITE_MODE_CHARS & set(mode)):
            return
        self._report(
            "RS501",
            node,
            f"bare open(..., {mode!r}) in a recovery-critical module — a "
            "crash can tear this write; go through "
            "repro.core.recovery.durable.durable_write (temp + fsync + "
            "rename) or justify with a suppression",
            key=f"open:{mode}",
        )

    def _check_write_method(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in _WRITE_METHODS:
            return
        self._report(
            "RS501",
            node,
            f".{node.func.attr}() writes a recovery-critical file without "
            "the temp + fsync + rename idiom — use "
            "repro.core.recovery.durable.durable_write",
            key=f"method:{node.func.attr}",
        )

    def _check_rename(self, node: ast.Call) -> None:
        dotted = resolve_dotted(node.func, self.scopes, self.imports)
        if dotted not in _RENAME_CALLS:
            return
        self._report(
            "RS502",
            node,
            f"{dotted}() in a recovery-critical module — a rename without "
            "the fd fsync before it and the directory fsync after it is "
            "not durable; use repro.core.recovery.durable.durable_write",
            key=f"rename:{dotted}",
        )


def _in_prefixes(name: str, prefixes: tuple[str, ...]) -> bool:
    return any(name == p or name.startswith(p + ".") for p in prefixes)


class DurabilityPass:
    """RS501/RS502 over the recovery-critical modules."""

    name = "durability"
    scope = "module"
    rule_ids = ("RS501", "RS502")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self.run_module(module, config))
        return findings

    def run_module(self, module: Module, config: LintConfig) -> list[Finding]:
        if module.name.split(".")[0] != config.package:
            return []
        if not _in_prefixes(module.name, config.durable_modules):
            return []
        if _in_prefixes(module.name, config.durable_writers):
            return []
        findings: list[Finding] = []
        _ModuleVisitor(module, config, findings).visit(module.tree)
        return findings
