"""Experiment E-T3: model comparison (paper Table 3 / Table 5).

Trains every Step-2 model on a random 2/3 of the merged five-IXP
corpus, evaluates on the remaining 1/3 (overall, per attack vector, and
prediction cost), and additionally applies all models — plus the
rule-based classifier (RBC) and the dummy baseline — to the self-attack
set (SAS).

Expected shape (paper): XGB best overall and on SAS near the top; DT at
the bottom of the main group; NB-C/NB-M clearly below; NB-B worst; the
dummy at ~0.5; RBC strong on SAS despite using no learned classifier.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.models.baselines import DummyClassifier, RuleBasedClassifier
from repro.core.models.metrics import ConfusionMatrix, fbeta_score, prediction_cost_mcc
from repro.core.models.pipeline import TABLE5_MODELS, make_pipeline
from repro.core.models.selection import train_test_split
from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import mine_rules
from repro.core.rules.model import RuleSet, RuleStatus
from repro.experiments.attribution import TABLE3_VECTORS, vector_masks
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import (
    DAYS_BY_SCALE,
    balanced_corpus,
    merged_corpus,
    sas_aggregated,
)
from repro.ixp.profiles import ALL_PROFILES
from repro.netflow.dataset import FlowDataset


#: Curation threshold: mined rules are staged at confidence >= 0.8, but
#: only high-precision rules are *accepted* as ACLs — matching the
#: paper's released rule list (all rules there have confidence > 0.9).
ACCEPT_CONFIDENCE = 0.95


def mine_shared_rules(scale: str) -> tuple[RuleSet, tuple]:
    """Mine + minimise + curate rules on the merged balanced flows.

    High-confidence rules are accepted (the automated stand-in for the
    operator review of Fig. 6); the rest stay in staging.
    """
    n_days = DAYS_BY_SCALE[scale]
    flows = FlowDataset.concat(
        [balanced_corpus(p, n_days).flows for p in ALL_PROFILES]
    )
    result = mine_rules(flows)
    minimized = minimize_rules(result.blackhole_rules)
    rule_set = RuleSet.from_mining(minimized, result.encoder)
    for rule in rule_set:
        # Curation policy mirroring what domain experts do in the UI:
        # high confidence AND a concrete source-port constraint (rules
        # without one match too broadly to be safe ACLs).
        specific_src = rule.port_src is not None and not rule.port_src.negated
        if rule.confidence >= ACCEPT_CONFIDENCE and specific_src:
            rule_set.set_status(rule.rule_id, RuleStatus.ACCEPT)
    return rule_set, tuple(rule_set.accepted())


def run(scale: str = "small", seed: int = 1, measure_cost: bool = True) -> ExperimentResult:
    """Run the Table 3 / Table 5 experiment."""
    check_scale(scale)
    rule_set, rules = mine_shared_rules(scale)
    merged = merged_corpus(scale, rules=rules)
    sas = sas_aggregated(scale, rules=rules)

    rng = np.random.default_rng(seed)
    train_idx, test_idx = train_test_split(
        len(merged), 1.0 / 3.0, rng, stratify=merged.labels
    )
    train, test = merged.select(train_idx), merged.select(test_idx)
    woe = WoEEncoder().fit(train)
    matrix_train = assemble(train, woe)
    matrix_test = assemble(test, woe)
    matrix_sas = assemble(sas, woe)
    masks = vector_masks(test)

    result = ExperimentResult(experiment="table3-models")
    test_labels = test.labels.astype(int)
    sas_labels = sas.labels.astype(int)

    for name in TABLE5_MODELS:
        pipeline = make_pipeline(name)
        pipeline.fit(matrix_train.X, matrix_train.y)
        predictions = pipeline.predict(matrix_test.X)
        cm = ConfusionMatrix.from_predictions(test_labels, predictions)
        row: dict[str, object] = {
            "model": name,
            "fbeta": cm.fbeta(),
            "f1": cm.f1(),
            "mcc": prediction_cost_mcc(pipeline.predict, matrix_test.X)
            if measure_cost
            else float("nan"),
            "tnr": cm.tnr,
            "fnr": cm.fnr,
            "tpr": cm.tpr,
            "fpr": cm.fpr,
        }
        for vector in TABLE3_VECTORS:
            mask = masks[vector]
            # A per-vector score is only meaningful when the vector is
            # actually attacking in the test period; benign service
            # traffic (legitimate DNS/NTP/SNMP) also attributes to the
            # vector's port and must not form positive-free subsets.
            if (mask & (test_labels == 1)).sum() >= 5:
                row[vector] = fbeta_score(test_labels[mask], predictions[mask])
            else:
                row[vector] = float("nan")
        row["fbeta_sas"] = fbeta_score(sas_labels, pipeline.predict(matrix_sas.X))
        result.rows.append(row)

    # Rule-based classifier: only evaluated on the SAS (validating on
    # the mining data would leak, paper §6.1).
    rbc = RuleBasedClassifier()
    rbc_predictions = rbc.predict_records(sas)
    rbc_cm = ConfusionMatrix.from_predictions(sas_labels, rbc_predictions)
    result.rows.append(
        {
            "model": "RBC",
            "fbeta": float("nan"),
            "f1": float("nan"),
            "mcc": float("nan"),
            "tnr": float("nan"),
            "fnr": float("nan"),
            "tpr": float("nan"),
            "fpr": float("nan"),
            **{v: float("nan") for v in TABLE3_VECTORS},
            "fbeta_sas": rbc_cm.fbeta(),
        }
    )
    result.notes["rbc_sas_tpr"] = rbc_cm.tpr
    result.notes["rbc_sas_tnr"] = rbc_cm.tnr

    dummy = DummyClassifier(seed=seed)
    dummy.fit(matrix_train.X, matrix_train.y)
    dum_pred = dummy.predict(matrix_test.X)
    dum_cm = ConfusionMatrix.from_predictions(test_labels, dum_pred)
    result.rows.append(
        {
            "model": "DUM",
            "fbeta": dum_cm.fbeta(),
            "f1": dum_cm.f1(),
            "mcc": float("nan"),
            "tnr": dum_cm.tnr,
            "fnr": dum_cm.fnr,
            "tpr": dum_cm.tpr,
            "fpr": dum_cm.fpr,
            **{v: float("nan") for v in TABLE3_VECTORS},
            "fbeta_sas": fbeta_score(sas_labels, dummy.predict(matrix_sas.X)),
        }
    )

    best = max(
        (r for r in result.rows if isinstance(r["fbeta"], float) and not np.isnan(r["fbeta"])),
        key=lambda r: r["fbeta"],
    )
    result.notes["best_model"] = best["model"]
    result.notes["n_train"] = len(train)
    result.notes["n_test"] = len(test)
    result.notes["n_rules"] = len(rules)
    return result
