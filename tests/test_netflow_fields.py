"""Tests for field constants and the DDoS-port taxonomy."""

from repro.netflow import fields
from repro.netflow.fields import (
    PROTO_GRE,
    PROTO_TCP,
    PROTO_UDP,
    WELL_KNOWN_DDOS_PORTS,
    ddos_port_label,
)


class TestDdosPortLabel:
    def test_udp_fragments(self):
        assert ddos_port_label(PROTO_UDP, 0) == "UDP Fragm."

    def test_ntp(self):
        assert ddos_port_label(PROTO_UDP, 123) == "NTP"

    def test_dns_udp_and_tcp_distinct(self):
        assert ddos_port_label(PROTO_UDP, 53) == "DNS"
        assert ddos_port_label(PROTO_TCP, 53) == "DNS (TCP)"

    def test_gre(self):
        assert ddos_port_label(PROTO_GRE, 0) == "GRE"

    def test_benign_ports_unlabelled(self):
        assert ddos_port_label(PROTO_TCP, 443) is None
        assert ddos_port_label(PROTO_TCP, 80) is None
        assert ddos_port_label(PROTO_UDP, 51820) is None

    def test_tcp_port_zero_not_fragment(self):
        """Fragment reporting is a UDP-exporter artefact."""
        assert ddos_port_label(PROTO_TCP, 0) is None

    def test_taxonomy_covers_fig4a_vectors(self):
        names = set(WELL_KNOWN_DDOS_PORTS.values())
        for expected in (
            "DNS", "NTP", "SNMP", "LDAP", "SSDP", "memcached", "chargen",
            "WS-Discovery", "Apple RD", "MSSQL", "rpcbind", "NetBios",
            "RIP", "OpenVPN", "TFTP", "Ubiq. SD", "WCCP", "DHCPDisc.",
            "GRE", "Micr. TS",
        ):
            assert expected in names, expected

    def test_ports_in_range(self):
        for (proto, port) in WELL_KNOWN_DDOS_PORTS:
            assert 0 <= port <= 0xFFFF
            assert proto in (PROTO_UDP, PROTO_TCP, PROTO_GRE)

    def test_protocol_names(self):
        assert fields.PROTOCOL_NAMES[PROTO_UDP] == "UDP"
        assert fields.PROTOCOL_NAMES[PROTO_TCP] == "TCP"
