"""Classifier interface shared by all Step-2 models."""

from __future__ import annotations

import numpy as np


class Classifier:
    """Minimal fit/predict interface on dense float matrices.

    ``predict`` returns int labels in {0, 1}; ``predict_proba`` returns
    P(y=1) per sample for models that support it.
    """

    #: Short display name (Table 3 row label).
    name: str = "classifier"

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class; default thresholds labels."""
        return self.predict(X).astype(np.float64)

    def get_params(self) -> dict[str, object]:
        """Hyperparameters, for grid-search bookkeeping."""
        return {}


def check_fit_inputs(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise training inputs."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64).ravel()
    if X.ndim != 2:
        raise ValueError("X must be a 2-d matrix")
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    if not np.isin(y, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    if np.isnan(X).any():
        raise ValueError("X contains NaN; run an Imputer first")
    return X, y
