"""Model selection: splits, cross-validation, grid search (Appendix C).

The paper optimises every classifier's hyperparameters with a grid
search under 3-fold cross-validation, scored by mean F(beta=0.5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.models.metrics import fbeta_score


def train_test_split(
    n: int,
    test_fraction: float,
    rng: np.random.Generator,
    stratify: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random (optionally stratified) index split.

    Returns (train_index, test_index). The paper's Table 3 uses a random
    2/3 / 1/3 split.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if n <= 1:
        raise ValueError("need at least two samples to split")
    if stratify is None:
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        return np.sort(order[n_test:]), np.sort(order[:n_test])
    stratify = np.asarray(stratify)
    if stratify.shape[0] != n:
        raise ValueError("stratify length mismatch")
    train_parts, test_parts = [], []
    for value in np.unique(stratify):
        idx = np.flatnonzero(stratify == value)
        order = rng.permutation(idx.shape[0])
        n_test = max(1, int(round(idx.shape[0] * test_fraction)))
        test_parts.append(idx[order[:n_test]])
        train_parts.append(idx[order[n_test:]])
    return np.sort(np.concatenate(train_parts)), np.sort(np.concatenate(test_parts))


def k_fold(
    n: int, k: int, rng: np.random.Generator, stratify: np.ndarray | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_index, validation_index) pairs for k folds."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError("not enough samples for the requested folds")
    if stratify is None:
        order = rng.permutation(n)
        folds = np.array_split(order, k)
    else:
        stratify = np.asarray(stratify)
        # Interleave each class's shuffled indices across folds.
        fold_lists: list[list[np.ndarray]] = [[] for _ in range(k)]
        for value in np.unique(stratify):
            idx = rng.permutation(np.flatnonzero(stratify == value))
            for f, chunk in enumerate(np.array_split(idx, k)):
                fold_lists[f].append(chunk)
        folds = [np.concatenate(parts) for parts in fold_lists]
    for f in range(k):
        validation = np.sort(folds[f])
        train = np.sort(np.concatenate([folds[g] for g in range(k) if g != f]))
        yield train, validation


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one grid-search run."""

    best_params: dict[str, object]
    best_score: float
    #: (params, mean score) per grid point, in evaluation order.
    history: tuple[tuple[dict[str, object], float], ...]


def parameter_grid(grid: dict[str, Sequence[object]]) -> list[dict[str, object]]:
    """Expand a parameter grid into the list of combinations."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    combos = itertools.product(*(grid[k] for k in keys))
    return [dict(zip(keys, values)) for values in combos]


def grid_search(
    factory: Callable[..., object],
    grid: dict[str, Sequence[object]],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 3,
    seed: int = 0,
    scorer: Callable[[np.ndarray, np.ndarray], float] = fbeta_score,
) -> GridSearchResult:
    """Grid search with stratified k-fold CV (paper Appendix C).

    ``factory(**params)`` must return an object with ``fit(X, y)`` and
    ``predict(X)`` (a classifier or a full pipeline).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    history: list[tuple[dict[str, object], float]] = []
    best_score = -np.inf
    best_params: dict[str, object] = {}
    for params in parameter_grid(grid):
        scores = []
        rng = np.random.default_rng(seed)
        for train_idx, val_idx in k_fold(X.shape[0], k, rng, stratify=y):
            model = factory(**params)
            model.fit(X[train_idx], y[train_idx])
            scores.append(scorer(y[val_idx], model.predict(X[val_idx])))
        mean_score = float(np.mean(scores))
        history.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return GridSearchResult(
        best_params=best_params,
        best_score=float(best_score),
        history=tuple(history),
    )
