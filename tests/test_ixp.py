"""Tests for the IXP substrate: members, profiles, fabric, sampling."""

import numpy as np
import pytest

from repro.ixp.fabric import IXPFabric
from repro.ixp.member import MemberAS, MemberRole
from repro.ixp.profiles import ALL_PROFILES, IXP_CE1, IXPProfile, profile_by_name
from repro.ixp.sampling import PacketSampler
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


class TestMember:
    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            MemberAS(asn=0, mac=1, role=MemberRole.EYEBALL)

    def test_rejects_bad_mac(self):
        with pytest.raises(ValueError):
            MemberAS(asn=1, mac=2**48, role=MemberRole.EYEBALL)

    def test_display_name_fallback(self):
        assert MemberAS(asn=64512, mac=1, role=MemberRole.EYEBALL).display_name() == "AS64512"

    def test_display_name_explicit(self):
        member = MemberAS(asn=64512, mac=1, role=MemberRole.EYEBALL, name="acme")
        assert member.display_name() == "acme"


class TestProfiles:
    def test_all_five_sites(self):
        names = {p.name for p in ALL_PROFILES}
        assert names == {"IXP-CE1", "IXP-US1", "IXP-SE", "IXP-US2", "IXP-CE2"}

    def test_ordering_largest_first(self):
        scales = [p.traffic_scale for p in ALL_PROFILES]
        assert scales == sorted(scales, reverse=True)

    def test_lookup(self):
        assert profile_by_name("IXP-CE1") is IXP_CE1

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            profile_by_name("IXP-XX")

    def test_seconds_per_day(self, tiny_profile):
        assert tiny_profile.seconds_per_day == tiny_profile.bins_per_day * 60

    def test_validation(self):
        with pytest.raises(ValueError):
            IXPProfile(
                name="x", region=0, n_members=0, traffic_scale=1,
                attacks_per_day=1, attack_intensity=1,
                benign_flows_per_target=1, benign_targets_per_minute=1,
            )


class TestFabric:
    def test_member_count(self, tiny_fabric, tiny_profile):
        assert len(tiny_fabric.members) == tiny_profile.n_members

    def test_member_macs_unique(self, tiny_fabric):
        macs = tiny_fabric.member_macs
        assert len(np.unique(macs)) == len(macs)

    def test_deterministic(self, tiny_profile):
        a = IXPFabric(tiny_profile)
        b = IXPFabric(tiny_profile)
        assert a.members == b.members

    def test_customer_spaces_disjoint_per_region(self):
        spaces = [IXPFabric(p).customer_space for p in ALL_PROFILES]
        for i, a in enumerate(spaces):
            for b in spaces[i + 1 :]:
                assert a.base + a.size <= b.base or b.base + b.size <= a.base

    def test_some_members_do_not_adhere(self):
        """Non-adherence is what makes blackholed traffic observable."""
        fabric = IXPFabric(IXP_CE1)
        adherence = [m.adheres_to_blackholing for m in fabric.members]
        assert not all(adherence)
        assert any(adherence)

    def test_process_updates_feeds_registry(self, tiny_fabric, tiny_capture):
        tiny_fabric.process_updates(tiny_capture.updates)
        assert len(tiny_fabric.blackholes.events()) > 0


class TestPacketSampler:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PacketSampler(0)

    def test_identity_at_rate_one(self, handmade_flows, rng):
        sampled = PacketSampler(1).sample(handmade_flows, rng)
        assert sampled is handmade_flows

    def test_thins_flows(self, rng):
        flows = FlowDataset.from_records(
            [make_flow(time=i, packets=2, bytes_=3000) for i in range(2000)]
        )
        sampled = PacketSampler(10).sample(flows, rng)
        assert 0 < len(sampled) < len(flows)

    def test_sampled_counters_shrink(self, rng):
        flows = FlowDataset.from_records([make_flow(packets=1000, bytes_=1500000)])
        sampled = PacketSampler(10).sample(flows, rng)
        assert len(sampled) == 1
        assert sampled.packets[0] < 1000
        # Mean packet size preserved (byte counters scale with packets).
        assert sampled.bytes[0] / sampled.packets[0] == pytest.approx(1500, rel=0.01)

    def test_upscale_estimates_volume(self, rng):
        flows = FlowDataset.from_records(
            [make_flow(time=i, packets=100, bytes_=150000) for i in range(500)]
        )
        sampler = PacketSampler(10)
        sampled = sampler.sample(flows, rng)
        estimate = sampler.upscale_bytes(sampled)
        truth = flows.total_bytes
        assert abs(estimate - truth) / truth < 0.1

    def test_empty_input(self, rng):
        assert len(PacketSampler(10).sample(FlowDataset.empty(), rng)) == 0
