"""BGP substrate: prefixes, communities, updates, RIB, blackhole registry."""

from repro.bgp.blackhole import BlackholeEvent, BlackholeRegistry
from repro.bgp.community import (
    BLACKHOLE,
    BLACKHOLE_VALUE,
    Community,
    has_blackhole_signal,
    is_blackhole_community,
)
from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.prefix import Prefix, PrefixTrie
from repro.bgp.rib import RoutingInformationBase

__all__ = [
    "BLACKHOLE",
    "BLACKHOLE_VALUE",
    "Announcement",
    "BlackholeEvent",
    "BlackholeRegistry",
    "Community",
    "Prefix",
    "PrefixTrie",
    "RoutingInformationBase",
    "Update",
    "Withdrawal",
    "has_blackhole_signal",
    "is_blackhole_community",
]
