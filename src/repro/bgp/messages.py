"""BGP UPDATE messages as exchanged via the IXP route server.

Only the attributes relevant to blackhole capture are modelled:
prefix (NLRI), origin ASN, AS path, communities, and the announcement
timestamp. Withdrawals reference the prefix and origin only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community, has_blackhole_signal
from repro.bgp.prefix import Prefix


@dataclass(frozen=True)
class Announcement:
    """A BGP route announcement received by the route server."""

    prefix: Prefix
    origin_asn: int
    time: int
    as_path: tuple[int, ...] = ()
    communities: frozenset[Community] = field(default_factory=frozenset)
    next_hop: int = 0

    def __post_init__(self) -> None:
        if self.origin_asn <= 0:
            raise ValueError("origin ASN must be positive")
        if self.as_path and self.as_path[-1] != self.origin_asn:
            raise ValueError("AS path must end at the origin ASN")

    @property
    def is_blackhole(self) -> bool:
        """True if this announcement carries a blackhole community."""
        return has_blackhole_signal(self.communities)


@dataclass(frozen=True)
class Withdrawal:
    """A BGP route withdrawal."""

    prefix: Prefix
    origin_asn: int
    time: int


Update = Announcement | Withdrawal
