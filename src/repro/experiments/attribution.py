"""Attributing aggregated records to DDoS attack vectors.

The per-vector columns of Table 3 score each model on the subset of
records belonging to one attack vector. A record is attributed from its
ranked source ports: the highest-ranked (by bytes) well-known DDoS port
determines the vector; records whose attack evidence is dominated by
port-0 fragments fall into the "UDP Fragm." class, mirroring the
paper's Fig. 4a taxonomy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.features import schema
from repro.core.features.aggregation import AggregatedDataset
from repro.netflow.fields import PROTO_GRE, PROTO_UDP, WELL_KNOWN_DDOS_PORTS

#: Table 3's per-vector columns.
TABLE3_VECTORS = ("UDP Fragm.", "DNS", "NTP", "SNMP", "LDAP", "SSDP", "Apple RD")

_PORT_TO_VECTOR: dict[int, str] = {
    port: name
    for (proto, port), name in WELL_KNOWN_DDOS_PORTS.items()
    if proto == PROTO_UDP and port != 0
}


#: Ranks (by bytes) considered for attribution. Restricting to the
#: dominant ranks keeps mixed benign records (e.g. one small legitimate
#: SNMP flow among twenty web flows) out of a vector's subset.
ATTRIBUTION_RANKS = 3


def attribute_records(data: AggregatedDataset) -> list[Optional[str]]:
    """Vector label per record (``None`` when no DDoS port evidence)."""
    out: list[Optional[str]] = [None] * len(data)
    rank_columns = [
        data.categorical[schema.key_column("src_port", "bytes", r)]
        for r in range(ATTRIBUTION_RANKS)
    ]
    protocols = data.categorical[schema.key_column("protocol", "bytes", 0)]
    for i in range(len(data)):
        fragment_seen = False
        for column in rank_columns:
            port = int(column[i])
            if port == schema.MISSING_KEY:
                continue
            name = _PORT_TO_VECTOR.get(port)
            if name is not None:
                out[i] = name
                break
            if port == 0 and int(protocols[i]) in (PROTO_UDP, PROTO_GRE):
                fragment_seen = True
        if out[i] is None and fragment_seen:
            out[i] = "UDP Fragm."
    return out


def vector_masks(
    data: AggregatedDataset, vectors: tuple[str, ...] = TABLE3_VECTORS
) -> dict[str, np.ndarray]:
    """Boolean record masks per vector name."""
    labels = attribute_records(data)
    return {
        v: np.asarray([lab == v for lab in labels], dtype=bool) for v in vectors
    }
