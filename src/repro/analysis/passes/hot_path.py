"""Hot-path discipline pass: RS701–RS703 in modules declared hot.

The throughput story of the engine rests on a handful of modules —
sketch counting, feature aggregation, model kernels, the shm protocol
— staying vectorised: one numpy operation over a whole batch instead
of a Python-level loop over flows. A single stray per-flow loop in
those files silently costs 10–100x. ``LintConfig.hot_modules`` names
them; inside them this pass flags:

* **RS701** — a ``for`` loop whose target is a per-flow/per-row name
  (``flow``, ``row``, ``record``, ``pkt``...) or whose iterable is a
  dataset-like name (``dataset``, ``flows``, ``batch``...). Loops over
  sketch depths, categorical schema columns or row *blocks* are fine
  and do not match.
* **RS702** — accumulating into a list with ``.append`` inside a loop
  and then feeding that list *directly* to a numpy conversion
  (``np.array``/``asarray``/``concatenate``/``fromiter``/...): the
  vectorised equivalent exists by construction, so preallocate or
  build from arrays. The list must be passed as a bare name — lists
  that are merely indexed into numpy expressions are bookkeeping, not
  accumulation.
* **RS703** — ``np.concatenate``/``np.append``/``vstack``/``hstack``/
  ``stack`` *inside* a ``for``/``while`` loop: each iteration copies
  everything accumulated so far — quadratic. Collect parts and
  concatenate once after the loop.

Comprehensions deliberately do not count as loops here: in this
codebase they iterate schema columns and sketch depths (bounded by
schema width, not flow count), and treating them as hot loops would
flag the legitimate per-column ``np.concatenate`` folds in
``aggregation.py``. The rules are syntactic; they share the function
inventory (:func:`repro.analysis.cfg.iter_functions`) with the
CFG-driven lifecycle pass.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.cfg import iter_functions
from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Module,
    Project,
    ScopeStack,
    collect_bindings,
    import_table,
    resolve_dotted,
)

__all__ = ["HotPathPass"]

#: Conversions that turn a Python list into an ndarray (RS702 sinks).
_NUMPY_CONVERSIONS = frozenset(
    "numpy." + n
    for n in (
        "array",
        "asarray",
        "asanyarray",
        "ascontiguousarray",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "fromiter",
    )
)

#: Calls that reallocate-and-copy the whole accumulation (RS703).
_NUMPY_LOOP_GROWERS = frozenset(
    "numpy." + n
    for n in (
        "concatenate",
        "append",
        "vstack",
        "hstack",
        "stack",
        "row_stack",
        "column_stack",
    )
)


class _Unit:
    """One analysis unit: the module top level or a single function."""

    def __init__(
        self,
        module: Module,
        config: LintConfig,
        imports: dict[str, str],
        qualname: str,
        scopes: ScopeStack,
        findings: list[Finding],
    ):
        self.module = module
        self.config = config
        self.imports = imports
        self.qualname = qualname
        self.scopes = scopes
        self.findings = findings
        self.list_inits: dict[str, int] = {}
        self.loop_appends: dict[str, ast.Call] = {}
        self.numpy_fed: dict[str, ast.Call] = {}

    def _report(
        self, rule: str, node: ast.AST, message: str, key: str
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
                symbol=self.qualname,
                key=key,
            )
        )

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk(stmt, 0)
        for name in self.list_inits:
            append = self.loop_appends.get(name)
            sink = self.numpy_fed.get(name)
            if append is not None and sink is not None:
                self._report(
                    "RS702",
                    append,
                    f"list {name!r} grows by append inside a loop and is "
                    f"converted with a numpy call on line {sink.lineno} — "
                    "preallocate the array or build it from whole-batch "
                    "operations",
                    key=f"append-accumulate:{name}",
                )

    def _walk(self, node: ast.AST, depth: int) -> None:
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            return  # nested units analyze themselves
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_rs701(node)
            self._walk(node.iter, depth)
            for child in node.body + node.orelse:
                self._walk(child, depth + 1)
            return
        if isinstance(node, ast.While):
            self._walk(node.test, depth)
            for child in node.body + node.orelse:
                self._walk(child, depth + 1)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, depth)
        elif isinstance(node, ast.Assign):
            self._check_list_init(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, depth)

    def _check_rs701(self, node: ast.For) -> None:
        target = node.target
        if (
            isinstance(target, ast.Name)
            and target.id in self.config.flow_loop_targets
        ):
            self._report(
                "RS701",
                node,
                f"per-flow Python loop (`for {target.id} in ...`) in hot "
                f"module {self.module.name} — this path must stay "
                "vectorised; operate on whole columns instead",
                key=f"flow-loop:{target.id}",
            )
            return
        if (
            isinstance(node.iter, ast.Name)
            and node.iter.id in self.config.flow_loop_iterables
        ):
            self._report(
                "RS701",
                node,
                f"Python loop over {node.iter.id!r} in hot module "
                f"{self.module.name} — this path must stay vectorised; "
                "operate on whole columns instead",
                key=f"flow-loop-iter:{node.iter.id}",
            )

    def _check_call(self, call: ast.Call, depth: int) -> None:
        func = call.func
        if (
            depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr == "append"
            and isinstance(func.value, ast.Name)
        ):
            self.loop_appends.setdefault(func.value.id, call)
        dotted = resolve_dotted(func, self.scopes, self.imports)
        if dotted is None:
            return
        if dotted in _NUMPY_CONVERSIONS:
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    self.numpy_fed.setdefault(arg.id, call)
        if dotted in _NUMPY_LOOP_GROWERS and depth > 0:
            short = dotted.replace("numpy.", "np.")
            self._report(
                "RS703",
                call,
                f"{short}() inside a loop copies the whole accumulation "
                "every iteration (quadratic) — collect parts and "
                "concatenate once after the loop",
                key=f"concat-in-loop:{dotted}",
            )

    def _check_list_init(self, node: ast.Assign) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        value = node.value
        is_list = isinstance(value, ast.List) and not value.elts
        is_list = is_list or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
            and not value.args
        )
        if is_list:
            self.list_inits.setdefault(node.targets[0].id, node.lineno)


class HotPathPass:
    """RS701/RS702/RS703 over the modules declared hot."""

    name = "hot_path"
    scope = "module"
    rule_ids = ("RS701", "RS702", "RS703")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self.run_module(module, config))
        return findings

    def run_module(self, module: Module, config: LintConfig) -> list[Finding]:
        if not any(
            module.name == hot or module.name.startswith(hot + ".")
            for hot in config.hot_modules
        ):
            return []
        findings: list[Finding] = []
        imports = import_table(module)
        module_bindings = collect_bindings(module.tree)

        top = _Unit(
            module,
            config,
            imports,
            "<module>",
            ScopeStack(module_bindings),
            findings,
        )
        top.run(module.tree.body)
        for qualname, func, _cls in iter_functions(module.tree):
            scopes = ScopeStack(module_bindings)
            scopes.push(collect_bindings(func))
            unit = _Unit(module, config, imports, qualname, scopes, findings)
            unit.run(func.body)
        return findings
