"""Tests for attack event rendering."""

import numpy as np
import pytest

from repro.netflow.fields import PORT_FRAGMENT, PROTO_UDP
from repro.traffic.attacks import AttackEvent, AttackGenerator
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import DNS, LDAP, NTP


@pytest.fixture
def generator():
    return AttackGenerator(ReflectorPool(region=0, seed=1))


def event(**overrides):
    defaults = dict(
        victim=0x0A000001,
        vectors=(NTP,),
        start=0,
        end=600,
        flows_per_minute=60.0,
    )
    defaults.update(overrides)
    return AttackEvent(**defaults)


class TestAttackEvent:
    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            event(start=10, end=10)

    def test_rejects_no_vectors(self):
        with pytest.raises(ValueError):
            event(vectors=())

    def test_rejects_bad_intensity(self):
        with pytest.raises(ValueError):
            event(flows_per_minute=0)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            event(vectors=(NTP, DNS), vector_weights=(1.0,))

    def test_weights_default_uniform(self):
        weights = event(vectors=(NTP, DNS)).weights()
        np.testing.assert_allclose(weights, [0.5, 0.5])

    def test_weights_normalised(self):
        weights = event(vectors=(NTP, DNS), vector_weights=(3.0, 1.0)).weights()
        np.testing.assert_allclose(weights, [0.75, 0.25])


class TestGeneration:
    def test_flow_count_near_expectation(self, generator, rng):
        flows = generator.generate(rng, event(flows_per_minute=120.0, end=1200))
        expected = 120 * 20
        assert 0.8 * expected < len(flows) < 1.2 * expected

    def test_all_flows_to_victim(self, generator, rng):
        flows = generator.generate(rng, event())
        assert (flows.dst_ip == 0x0A000001).all()

    def test_ntp_signature(self, generator, rng):
        flows = generator.generate(rng, event(vectors=(NTP,), flows_per_minute=200))
        non_fragment = flows.select(flows.src_port != PORT_FRAGMENT)
        assert (non_fragment.src_port == 123).all()
        assert (non_fragment.protocol == PROTO_UDP).all()
        assert abs(np.median(non_fragment.packet_size) - NTP.packet_size_mean) < 60

    def test_fragments_present_for_fragmenting_vector(self, generator, rng):
        flows = generator.generate(rng, event(vectors=(LDAP,), flows_per_minute=300))
        fragment_share = (flows.src_port == PORT_FRAGMENT).mean()
        assert 0.2 < fragment_share < 0.5  # LDAP fragment_fraction = 0.35
        fragments = flows.select(flows.src_port == PORT_FRAGMENT)
        assert (fragments.dst_port == PORT_FRAGMENT).all()
        assert np.median(fragments.packet_size) > 1200

    def test_no_fragments_for_ntp(self, generator, rng):
        flows = generator.generate(rng, event(vectors=(NTP,), flows_per_minute=300))
        assert (flows.src_port == 123).all()

    def test_window_clipping(self, generator, rng):
        flows = generator.generate(
            rng, event(start=0, end=600), window_start=120, window_end=180
        )
        assert (flows.time >= 120).all() and (flows.time < 180).all()

    def test_empty_window(self, generator, rng):
        flows = generator.generate(
            rng, event(start=0, end=600), window_start=700, window_end=800
        )
        assert len(flows) == 0

    def test_multi_vector_mix(self, generator, rng):
        flows = generator.generate(
            rng,
            event(vectors=(NTP, DNS), vector_weights=(1.0, 1.0), flows_per_minute=400),
        )
        ports = set(np.unique(flows.src_port).tolist())
        assert 123 in ports and 53 in ports

    def test_sources_are_reflectors(self, generator, rng):
        pool = ReflectorPool(region=0, seed=1)
        flows = generator.generate(rng, event(vectors=(NTP,), flows_per_minute=200))
        non_fragment = flows.select(flows.src_port != PORT_FRAGMENT)
        assert np.isin(non_fragment.src_ip, pool.reflectors(NTP)).all()

    def test_flows_not_prelabeled(self, generator, rng):
        flows = generator.generate(rng, event())
        assert not flows.blackhole.any()
