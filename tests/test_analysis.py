"""Tests for the ``repro.analysis`` static-analysis framework.

The heart is a fixture corpus — a miniature project laid out like the
real one (``repro`` package, obs/netflow/core/... layers, a shard-worker
entry point, a name catalogue and a METRICS.md) that gives **every rule
id at least one positive and one negative case**. Tests assert on
``(rule, path, line)`` triples located by searching the fixture source
for the violating text, so they stay robust against fixture edits.

Framework behaviour (suppression grammar, baseline round-trip,
fingerprint stability, path/rule filters) is covered on top, and the
last test runs the analyzer over the *real* tree: the repository must
lint clean — that is the PR's acceptance criterion, kept green by CI.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    RULES,
    Baseline,
    Finding,
    LintConfig,
    default_config,
    format_human,
    format_json,
    load_baseline,
    run_lint,
    scan_suppressions,
    write_baseline,
)

# --------------------------------------------------------------------------
# The fixture corpus
# --------------------------------------------------------------------------

CORPUS = {
    rel: textwrap.dedent(text)
    for rel, text in {
        "repro/__init__.py": "",
        "repro/obs/__init__.py": """\
            def counter(name, value=1, **labels):
                return name


            def gauge(name, value=0, **labels):
                return name


            def histogram(name, value=0, **labels):
                return name


            def span(name, **labels):
                return name
            """,
        "repro/obs/names.py": """\
            C_FLOWS = "pipeline.flows"
            C_DEAD = "pipeline.dead"
            G_DEPTH = "queue.depth"
            SPAN_INGEST = "ingest"
            """,
        # RS101 negative: the obs layer owns the clock.
        "repro/obs/clock.py": """\
            import time


            def now():
                return time.time()
            """,
        # RS301 positive (netflow -> core is a layering violation);
        # RS103 negative (sorted(set(...)) is deterministic).
        "repro/netflow/parse.py": """\
            from repro.core.engine import tick


            def parse(xs):
                return [x for x in sorted(set(xs))]
            """,
        # RS301 negative: bgp may import netflow.
        "repro/bgp/feed.py": """\
            from repro.netflow.parse import parse


            def feed(xs):
                return parse(xs)
            """,
        # RS103 negative: traffic is outside the set-iteration scopes.
        "repro/traffic/gen.py": """\
            def spread(xs):
                return [x for x in set(xs)]
            """,
        # The determinism + obs-names showcase.
        "repro/core/engine.py": """\
            import random
            import time

            import numpy as np

            from repro.obs import counter, gauge, span
            from repro.obs import names


            def tick():
                t = time.time()
                r = random.random()
                legacy = np.random.rand(3)
                ok = np.random.default_rng(0).random()
                rr = random.Random(7).random()
                for x in set([1, 2]):
                    t += x
                h = hash("key")
                counter(names.C_FLOWS)
                gauge(names.C_FLOWS)
                counter("raw.literal")
                gauge(names.G_DEPTH)
                span(names.SPAN_INGEST)
                return t, r, legacy, ok, rr, h


            def pace():
                time.sleep(0)


            def stable(xs, hash=None):
                return hash(xs) if hash else 0
            """,
        # Sketch worker state: the per-worker counting path must keep
        # all mutation on instance state (negative); a module-global
        # sketch cache written on the worker path is a race (positive).
        "repro/core/features/__init__.py": "",
        "repro/core/features/sketches.py": """\
            SKETCH_CACHE = {}


            class BinSketch:
                def __init__(self):
                    self.table = [0] * 4

                def absorb(self, key):
                    SKETCH_CACHE[key] = key
                    self.table[key % 4] += 1
                    return self.table


            def coordinator_merge(state):
                SKETCH_CACHE.clear()
                return state
            """,
        # The shard-safety showcase.
        "repro/core/parallel/__init__.py": "",
        "repro/core/parallel/backends.py": """\
            from repro.core.features.sketches import BinSketch

            SHARED = {}
            TOTALS = 0


            class Worker:
                cache = {}

                def __init__(self):
                    self.local = []

                def handle(self, item):
                    type(self).generation = item
                    self.bump_cache(item)
                    self.local.append(item)
                    bump()
                    return make_counter()

                @classmethod
                def bump_cache(cls, item):
                    cls.cache[item] = 1


            def bump():
                global TOTALS
                TOTALS += 1


            def make_counter():
                n = 0

                def inc():
                    nonlocal n
                    n += 1
                    return n

                return inc


            def _worker_main(conn):
                w = Worker()
                SHARED["x"] = 1
                sketch = BinSketch()
                sketch.absorb(2)
                return w.handle(1)


            def coordinator_only():
                global TOTALS
                TOTALS = 0


            def unreached():
                m = 0

                def dec():
                    nonlocal m
                    m -= 1
                    return m

                return dec


            def rogue_ring_poke(seg, header):
                seg.buf[0:4] = b"FAKE"
                header.pack_into(seg.buf, 64, 1)
                peek = seg.buf[4:8]
                return peek
            """,
        # RS204 negative: the protocol module itself owns segment
        # layout, so its raw writes are sanctioned.
        "repro/core/parallel/shm.py": """\
            def write_frame(shm, payload):
                shm.buf[64 : 64 + len(payload)] = payload
                return len(payload)
            """,
        # Suppression grammar: one used, one missing its reason, one
        # naming an unknown rule, one matching nothing.
        "repro/core/suppressed.py": """\
            import random


            def sampler():
                value = random.random()  # repro: lint-ignore[RS102] fixture: justified use
                bad = random.random()  # repro: lint-ignore[RS102]
                worse = random.random()  # repro: lint-ignore[RS999] confident but wrong
                return value, bad, worse


            # repro: lint-ignore[RS101] nothing below reads the clock
            SETTING = 1
            """,
        # RS302 positive (pandas) next to its negative (numpy).
        "repro/experiments/report.py": """\
            import numpy as np
            import pandas as pd


            def report(frame):
                return pd.DataFrame(frame), np.asarray(frame)
            """,
        # RS301 positive: a subpackage absent from the layer contract.
        "repro/rogue/thing.py": """\
            from repro.obs import counter


            def emit():
                return counter("rogue.metric")
            """,
        # RS501/RS502 positives: bare writes and renames in a
        # recovery-critical module that bypass the durable writer.
        "repro/core/recovery/__init__.py": "",
        "repro/core/recovery/snapshot.py": """\
            import os
            from pathlib import Path


            def save(path, data):
                with open(path, "w") as handle:  # bare write
                    handle.write(data)
                Path(path).write_bytes(data.encode())
                os.replace(path + ".tmp", path)  # rename, no fsync


            def load(path):
                with open(path) as handle:  # read-only: allowed
                    return handle.read()
            """,
        # RS501/RS502 negative: the sanctioned writer module itself.
        "repro/core/recovery/durable.py": """\
            import os


            def durable_write(path, data):
                tmp = str(path) + ".tmp"
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            """,
        # RS501 negative: writes outside the durable scope are fine.
        "repro/core/exporter.py": """\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
        # The resource-lifecycle (RS601–RS604) showcase: every function
        # exercises one path shape the CFG dataflow must get right.
        "repro/core/parallel/lifecycle.py": """\
            from repro.core.parallel.shm import ShmRing


            def leak_normal(cond):
                branchy = ShmRing()
                if cond:
                    branchy.close()
                return None


            def discard_result():
                ShmRing.attach("stale")


            def leaks_on_raise():
                fragile = ShmRing()
                fragile.write_flows(1)
                fragile.close()


            def closes_in_finally():
                guarded = ShmRing()
                try:
                    guarded.write_flows(1)
                finally:
                    guarded.close()


            def handler_reraises():
                handled = ShmRing()
                try:
                    handled.write_flows(1)
                except Exception:
                    handled.close()
                    raise
                handled.close()


            def managed(path):
                with open(path) as handle:
                    return handle.read()


            def conditional_acquire(cond):
                optional = ShmRing() if cond else None
                if optional is not None:
                    optional.close()


            def alias_escapes():
                source = ShmRing()
                other = source
                other.close()


            def spawn_worker(ctx):
                proc = ctx.Process(target=None)
                proc.start()
                proc.join()


            class RingOwner:
                def __init__(self, validate):
                    self._ring = ShmRing()
                    if validate:
                        self._validate()

                def _validate(self):
                    return True

                def close(self):
                    self._ring.close()


            class SafeRingOwner:
                def __init__(self, validate):
                    self._careful = ShmRing()
                    try:
                        if validate:
                            self._validate()
                    except BaseException:
                        self.close()
                        raise

                def _validate(self):
                    return True

                def close(self):
                    self._careful.close()


            class RingHoarder:
                def __init__(self):
                    loot = ShmRing()
                    self._plunder = loot


            class DerivedOwner(RingOwner):
                def __init__(self):
                    self._inherited = ShmRing()
            """,
        # The hot-path (RS701–RS703) showcase: aggregation is a hot
        # module by default config.
        "repro/core/features/aggregation.py": """\
            import numpy as np


            def per_flow_fold(dataset, batches):
                out = []
                for flow in dataset:
                    out.append(flow)
                total = np.zeros(1)
                for chunk in batches:
                    total = np.concatenate([total, chunk])
                return np.asarray(out), total


            def vectorised_fold(columns):
                parts = [np.asarray(column) for column in columns]
                return np.concatenate(parts)


            def bounded_loop(depths):
                acc = []
                for depth in depths:
                    acc.append(depth)
                return acc
            """,
        # RS701 negative: the same per-flow loop outside a hot module.
        "repro/core/pipeline_glue.py": """\
            def per_flow_glue(dataset):
                total = 0
                for flow in dataset:
                    total += 1
                return total
            """,
    }.items()
}

METRICS_DOC = textwrap.dedent(
    """\
    # Metrics

    | name | kind |
    | --- | --- |
    | `pipeline.flows` | counter |
    | `queue.depth` | gauge |
    | `ingest` | span |
    | `raw.literal` | counter |
    | `rogue.metric` | counter |
    """
)


def build_project(tmp_path, files, metrics=None):
    """Materialise a fixture tree and return its LintConfig."""
    src = tmp_path / "src"
    for rel, text in files.items():
        path = src / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    for directory in src.rglob("**/"):
        init = directory / "__init__.py"
        if directory != src and not init.exists():
            init.write_text("", encoding="utf-8")
    doc = None
    if metrics is not None:
        doc = tmp_path / "docs" / "METRICS.md"
        doc.parent.mkdir(exist_ok=True)
        doc.write_text(metrics, encoding="utf-8")
    return LintConfig(
        src_root=src,
        rel_to=tmp_path,
        metrics_doc=doc,
        worker_entry_points=(
            "repro.core.parallel.backends._worker_main",
        ),
        baseline_path=tmp_path / "lint-baseline.json",
    )


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("corpus")
    config = build_project(tmp, CORPUS, metrics=METRICS_DOC)
    return config, run_lint(config, baseline=Baseline())


def line_of(rel, needle, occurrence=1):
    """1-based line of the nth occurrence of ``needle`` in a corpus file."""
    for lineno, text in enumerate(CORPUS[rel].splitlines(), 1):
        if needle in text:
            occurrence -= 1
            if occurrence == 0:
                return lineno
    raise AssertionError(f"{needle!r} not found in {rel}")


def hits(result, rule):
    """(path, line) of every reported finding of one rule."""
    return {(f.path, f.line) for f in result.findings if f.rule == rule}


def src(rel):
    return f"src/{rel}"


# --------------------------------------------------------------------------
# Per-rule positive + negative cases
# --------------------------------------------------------------------------


def test_every_rule_id_fires_on_the_corpus(corpus):
    _, result = corpus
    fired = {f.rule for f in result.findings}
    expected = set(RULES) - {"RS003"}  # RS003 needs a baseline: below
    assert fired == expected


def test_rs101_wall_clock(corpus):
    _, result = corpus
    engine = src("repro/core/engine.py")
    assert hits(result, "RS101") == {
        (engine, line_of("repro/core/engine.py", "time.time()"))
    }
    # Negatives: the obs layer is exempt; time.sleep is not a read.
    assert src("repro/obs/clock.py") not in {
        f.path for f in result.findings
    }


def test_rs102_global_rng(corpus):
    _, result = corpus
    engine = "repro/core/engine.py"
    sup = "repro/core/suppressed.py"
    assert hits(result, "RS102") == {
        (src(engine), line_of(engine, "random.random()")),
        (src(engine), line_of(engine, "np.random.rand(3)")),
        # Suppression lacking a reason / naming an unknown rule does
        # not take effect, so these two still surface.
        (src(sup), line_of(sup, "bad = random.random()")),
        (src(sup), line_of(sup, "worse = random.random()")),
    }
    # Negatives: explicit-Generator and seeded-instance APIs.
    clean = {
        line_of(engine, "np.random.default_rng(0)"),
        line_of(engine, "random.Random(7)"),
    }
    assert not {
        f.line for f in result.findings if f.path == src(engine)
    } & clean


def test_rs103_set_iteration(corpus):
    _, result = corpus
    engine = "repro/core/engine.py"
    assert hits(result, "RS103") == {
        (src(engine), line_of(engine, "for x in set([1, 2])"))
    }
    # Negatives: sorted(set(...)) in-scope, raw set out of scope.
    assert src("repro/netflow/parse.py") not in {
        f.path for f in result.findings if f.rule == "RS103"
    }
    assert src("repro/traffic/gen.py") not in {
        f.path for f in result.findings
    }


def test_rs104_salted_hash(corpus):
    _, result = corpus
    engine = "repro/core/engine.py"
    assert hits(result, "RS104") == {
        (src(engine), line_of(engine, 'hash("key")'))
    }
    # Negative: `hash` rebound as a parameter shadows the builtin.
    assert (
        src(engine),
        line_of(engine, "hash(xs) if hash"),
    ) not in hits(result, "RS104")


def test_rs201_module_global_writes(corpus):
    _, result = corpus
    backends = "repro/core/parallel/backends.py"
    sketches = "repro/core/features/sketches.py"
    assert hits(result, "RS201") == {
        (src(backends), line_of(backends, "TOTALS += 1")),
        (src(backends), line_of(backends, 'SHARED["x"] = 1')),
        # Worker-reachable write to the module-global sketch cache.
        (src(sketches), line_of(sketches, "SKETCH_CACHE[key] = key")),
    }
    # Negative: the same global write in a function the worker never
    # reaches is not a race.
    assert (
        src(backends),
        line_of(backends, "TOTALS = 0"),
    ) not in hits(result, "RS201")
    # Negatives: the sketch's own table is instance state (worker-
    # owned), and the coordinator-side merge never runs in a worker.
    sketch_hits = {
        f.line for f in result.findings if f.path == src(sketches)
    }
    assert line_of(sketches, "self.table[key % 4] += 1") not in sketch_hits
    assert line_of(sketches, "SKETCH_CACHE.clear()") not in sketch_hits


def test_rs201_sketch_chain_names_the_route(corpus):
    _, result = corpus
    sketches = src("repro/core/features/sketches.py")
    (finding,) = [
        f for f in result.findings
        if f.rule == "RS201" and f.path == sketches
    ]
    assert "_worker_main" in finding.message
    assert "absorb" in finding.message


def test_rs202_class_attribute_writes(corpus):
    _, result = corpus
    backends = "repro/core/parallel/backends.py"
    assert hits(result, "RS202") == {
        (src(backends), line_of(backends, "type(self).generation")),
        (src(backends), line_of(backends, "cls.cache[item] = 1")),
    }
    # Negative: instance state is worker-owned.
    assert (
        src(backends),
        line_of(backends, "self.local.append(item)"),
    ) not in hits(result, "RS202")


def test_rs203_closure_writes(corpus):
    _, result = corpus
    backends = "repro/core/parallel/backends.py"
    assert hits(result, "RS203") == {
        (src(backends), line_of(backends, "n += 1"))
    }
    # Negative: the closure in unreached() is never worker-reachable.
    assert (
        src(backends),
        line_of(backends, "m -= 1"),
    ) not in hits(result, "RS203")


def test_rs204_shm_buffer_writes(corpus):
    _, result = corpus
    backends = "repro/core/parallel/backends.py"
    assert hits(result, "RS204") == {
        (src(backends), line_of(backends, 'seg.buf[0:4] = b"FAKE"')),
        (src(backends), line_of(backends, "header.pack_into(seg.buf")),
    }
    # Negatives: reads through .buf are fine, and the protocol module
    # itself is exempt even though it stores into segment memory.
    assert (
        src(backends),
        line_of(backends, "peek = seg.buf[4:8]"),
    ) not in hits(result, "RS204")
    assert src("repro/core/parallel/shm.py") not in {
        f.path for f in result.findings if f.rule == "RS204"
    }
    # Reachability is irrelevant: rogue_ring_poke is never called from
    # the worker entry point yet both writes are still flagged.
    poke = [
        f for f in result.findings
        if f.rule == "RS204" and f.symbol == "rogue_ring_poke"
    ]
    assert len(poke) == 2
    assert all("docs/IPC.md" in f.message for f in poke)


def test_rs203_chain_names_the_route(corpus):
    _, result = corpus
    (finding,) = [f for f in result.findings if f.rule == "RS203"]
    assert "_worker_main" in finding.message
    assert "make_counter" in finding.message


def test_rs301_layer_contract(corpus):
    _, result = corpus
    assert hits(result, "RS301") == {
        (
            src("repro/netflow/parse.py"),
            line_of("repro/netflow/parse.py", "from repro.core.engine"),
        ),
        (
            src("repro/rogue/thing.py"),
            line_of("repro/rogue/thing.py", "from repro.obs"),
        ),
    }
    # Negative: bgp -> netflow is a declared edge.
    assert src("repro/bgp/feed.py") not in {
        f.path for f in result.findings
    }


def test_rs302_external_dependency(corpus):
    _, result = corpus
    report = "repro/experiments/report.py"
    assert hits(result, "RS302") == {
        (src(report), line_of(report, "import pandas"))
    }
    assert (
        src(report),
        line_of(report, "import numpy"),
    ) not in hits(result, "RS302")


def test_rs401_dead_catalogue_name(corpus):
    _, result = corpus
    dead = [f for f in result.findings if f.rule == "RS401"]
    assert [f.path for f in dead] == [src("repro/obs/names.py")]
    assert "C_DEAD" in dead[0].message
    assert "C_FLOWS" not in dead[0].message


def test_rs402_literal_bypasses_catalogue(corpus):
    _, result = corpus
    literals = {
        f.message.split("'")[1]
        for f in result.findings
        if f.rule == "RS402"
    }
    assert literals == {"raw.literal", "rogue.metric"}


def test_rs403_undocumented_name(corpus):
    _, result = corpus
    undocumented = [f for f in result.findings if f.rule == "RS403"]
    assert len(undocumented) == 1
    assert "pipeline.dead" in undocumented[0].message
    assert not any(
        "pipeline.flows" in f.message for f in undocumented
    )


def test_rs404_kind_mismatch(corpus):
    _, result = corpus
    engine = "repro/core/engine.py"
    assert hits(result, "RS404") == {
        (src(engine), line_of(engine, "gauge(names.C_FLOWS)"))
    }
    clean = {
        line_of(engine, "counter(names.C_FLOWS)"),
        line_of(engine, "gauge(names.G_DEPTH)"),
        line_of(engine, "span(names.SPAN_INGEST)"),
    }
    assert not {
        f.line for f in result.findings if f.rule == "RS404"
    } & clean


def test_rs501_bare_writes_in_durable_modules(corpus):
    _, result = corpus
    snap = "repro/core/recovery/snapshot.py"
    assert hits(result, "RS501") == {
        (src(snap), line_of(snap, 'open(path, "w")')),
        (src(snap), line_of(snap, "write_bytes")),
    }


def test_rs502_bare_rename_in_durable_modules(corpus):
    _, result = corpus
    snap = "repro/core/recovery/snapshot.py"
    assert hits(result, "RS502") == {
        (src(snap), line_of(snap, "os.replace(path")),
    }


LIFE = "repro/core/parallel/lifecycle.py"
AGG = "repro/core/features/aggregation.py"


def test_rs601_normal_path_leak(corpus):
    _, result = corpus
    assert hits(result, "RS601") == {
        # Released only on one branch: the else-path leaks.
        (src(LIFE), line_of(LIFE, "branchy = ShmRing()")),
        # The return value of a constructor dropped on the floor.
        (src(LIFE), line_of(LIFE, 'ShmRing.attach("stale")')),
    }
    # Negatives: try/finally, with-managed, refinement-guarded and
    # aliased acquisitions are all settled.
    clean = {
        line_of(LIFE, "guarded = ShmRing()"),
        line_of(LIFE, "with open(path) as handle"),
        line_of(LIFE, "optional = ShmRing() if cond else None"),
        line_of(LIFE, "source = ShmRing()"),
    }
    assert not {f.line for f in result.findings if f.path == src(LIFE)} & clean


def test_rs602_exception_path_leak(corpus):
    _, result = corpus
    assert hits(result, "RS602") == {
        # write_flows may raise before the close at the end.
        (src(LIFE), line_of(LIFE, "fragile = ShmRing()")),
        # Process.start may raise before join settles it.
        (src(LIFE), line_of(LIFE, "proc = ctx.Process(target=None)")),
    }
    # Negative: a handler that releases and re-raises settles the
    # exception path.
    assert (src(LIFE), line_of(LIFE, "handled = ShmRing()")) not in hits(
        result, "RS602"
    )


def test_rs603_init_strands_resource(corpus):
    _, result = corpus
    assert hits(result, "RS603") == {
        # _validate() may raise after the ring landed on self._ring.
        (src(LIFE), line_of(LIFE, "self._ring = ShmRing()")),
    }
    # Negative: the except-BaseException/close/raise shape settles it.
    assert (
        src(LIFE),
        line_of(LIFE, "self._careful = ShmRing()"),
    ) not in hits(result, "RS603")


def test_rs604_owner_cannot_release(corpus):
    _, result = corpus
    assert hits(result, "RS604") == {
        # RingHoarder takes ownership but defines no release method.
        (src(LIFE), line_of(LIFE, "self._plunder = loot")),
    }
    # Negatives: a class with close(), and a derived class whose base
    # may provide the release.
    for needle in ("self._careful = ShmRing()", "self._inherited = ShmRing()"):
        assert (src(LIFE), line_of(LIFE, needle)) not in hits(result, "RS604")


def test_rs701_per_flow_loop_in_hot_module(corpus):
    _, result = corpus
    assert hits(result, "RS701") == {
        (src(AGG), line_of(AGG, "for flow in dataset")),
        (src(AGG), line_of(AGG, "for chunk in batches")),
    }
    # Negatives: a neutral loop in the hot module; the same per-flow
    # loop outside a hot module.
    assert (src(AGG), line_of(AGG, "for depth in depths")) not in hits(
        result, "RS701"
    )
    glue = "repro/core/pipeline_glue.py"
    assert src(glue) not in {f.path for f in result.findings}


def test_rs702_list_append_feeds_numpy(corpus):
    _, result = corpus
    assert hits(result, "RS702") == {
        (src(AGG), line_of(AGG, "out.append(flow)")),
    }
    (finding,) = [f for f in result.findings if f.rule == "RS702"]
    # The message names the conversion sink that makes the list hot.
    assert str(line_of(AGG, "np.asarray(out)")) in finding.message
    # Negative: a loop-built list never handed to numpy is fine.
    assert (src(AGG), line_of(AGG, "acc.append(depth)")) not in hits(
        result, "RS702"
    )


def test_rs703_numpy_growth_in_loop(corpus):
    _, result = corpus
    assert hits(result, "RS703") == {
        (src(AGG), line_of(AGG, "np.concatenate([total, chunk])")),
    }
    # Negative: one concatenate over comprehension parts, outside any
    # loop, is the recommended shape.
    assert (src(AGG), line_of(AGG, "np.concatenate(parts)")) not in hits(
        result, "RS703"
    )


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------


def test_rs001_malformed_suppressions(corpus):
    _, result = corpus
    sup = "repro/core/suppressed.py"
    assert hits(result, "RS001") == {
        (src(sup), line_of(sup, "bad = random.random()")),
        (src(sup), line_of(sup, "worse = random.random()")),
    }


def test_rs002_unused_suppression(corpus):
    _, result = corpus
    sup = "repro/core/suppressed.py"
    assert hits(result, "RS002") == {
        (src(sup), line_of(sup, "nothing below reads the clock"))
    }


def test_valid_suppression_absorbs_its_finding(corpus):
    _, result = corpus
    sup = "repro/core/suppressed.py"
    target = line_of(sup, "value = random.random()")
    # Not reported...
    assert (src(sup), target) not in hits(result, "RS102")
    # ...but recorded as suppressed, with the reason attached.
    (pair,) = [
        (f, s)
        for f, s in result.suppressed
        if f.path == src(sup) and f.line == target
    ]
    assert pair[0].rule == "RS102"
    assert pair[1].reason == "fixture: justified use"


def test_suppression_comments_in_strings_are_ignored():
    suppressions, malformed = scan_suppressions(
        "x.py",
        'DOC = "# repro: lint-ignore[RS101] not a real comment"\n',
    )
    assert suppressions == [] and malformed == []


def test_standalone_suppression_targets_next_code_line():
    source = (
        "# repro: lint-ignore[RS102] covers the call below\n"
        "\n"
        "# an unrelated comment\n"
        "value = 1\n"
    )
    (sup,), malformed = scan_suppressions("x.py", source)
    assert malformed == []
    assert sup.line == 1 and sup.target_line == 4


# --------------------------------------------------------------------------
# Baseline round-trip (RS003 positive + negative)
# --------------------------------------------------------------------------

VIOLATING = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/core/clocky.py": textwrap.dedent(
        """\
        import time


        def now():
            return time.time()
        """
    ),
}


def test_baseline_round_trip(tmp_path):
    config = build_project(tmp_path, VIOLATING)
    first = run_lint(config)
    assert [f.rule for f in first.findings] == ["RS101"]

    # Grandfather it; justifications are written empty on purpose, so
    # the next run trades RS101 for RS003 — the ledger can't go green
    # without a human writing down *why*.
    write_baseline(config.baseline_path, first.findings)
    second = run_lint(config)
    assert [f.rule for f in second.findings] == ["RS003"]
    assert [f.rule for f in second.baselined] == ["RS101"]
    assert second.exit_code == 1

    # Fill in the justification: clean.
    data = json.loads(config.baseline_path.read_text())
    data["entries"][0]["justification"] = "legacy timing; tracked in #42"
    config.baseline_path.write_text(json.dumps(data))
    third = run_lint(config)
    assert third.findings == [] and third.exit_code == 0
    assert [f.rule for f in third.baselined] == ["RS101"]
    assert third.stale_baseline == []

    # Fix the violation: the entry goes stale and is reported as such.
    (tmp_path / "src/repro/core/clocky.py").write_text(
        "def now():\n    return 0.0\n"
    )
    fourth = run_lint(config)
    assert fourth.findings == [] and fourth.baselined == []
    assert len(fourth.stale_baseline) == 1
    assert "stale baseline" in format_human(fourth)


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "bl.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


def test_fingerprint_is_line_independent():
    a = Finding(rule="RS101", path="a.py", line=3, col=1,
                message="m", symbol="f", key="clock:time.time")
    b = Finding(rule="RS101", path="a.py", line=99, col=7,
                message="m", symbol="f", key="clock:time.time")
    c = Finding(rule="RS101", path="a.py", line=3, col=1,
                message="m", symbol="f", key="clock:time.monotonic")
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


# --------------------------------------------------------------------------
# Runner filters and output formats
# --------------------------------------------------------------------------


def test_rules_filter(corpus):
    config, _ = corpus
    result = run_lint(config, rules=["RS302"], baseline=Baseline())
    assert {f.rule for f in result.findings} == {"RS302"}


def test_paths_filter(corpus):
    config, _ = corpus
    result = run_lint(
        config, paths=("src/repro/experiments",), baseline=Baseline()
    )
    assert result.findings, "path filter dropped everything"
    assert all(
        f.path.startswith("src/repro/experiments/")
        for f in result.findings
    )


def test_json_format_is_stable(corpus):
    _, result = corpus
    payload = json.loads(format_json(result))
    assert payload["version"] == 1
    assert set(payload["counts"]) == {
        "findings", "suppressed", "baselined", "stale_baseline",
    }
    assert payload["counts"]["findings"] == len(payload["findings"])
    for row in payload["findings"]:
        assert set(row) >= {"rule", "path", "line", "col", "message",
                            "fingerprint"}
    assert set(payload["rules"]) == set(RULES)


def test_human_format_renders_every_finding(corpus):
    _, result = corpus
    text = format_human(result)
    assert f"{len(result.findings)} finding(s)" in text
    for finding in result.findings:
        assert f"{finding.path}:{finding.line}" in text


# --------------------------------------------------------------------------
# The real tree
# --------------------------------------------------------------------------


def test_real_repository_lints_clean():
    """The acceptance criterion: ``repro lint`` is green on src/.

    Every violation in the tree has either been fixed or carries an
    inline suppression with a reason; the shipped baseline is empty.
    """
    config = default_config()
    result = run_lint(config)
    assert result.findings == [], format_human(result)
    assert result.modules_scanned > 100
    # The justified debt is visible, not hidden: the suppressions the
    # tree does carry are all used (RS002 would fire otherwise).
    assert len(result.suppressed) >= 8


# --------------------------------------------------------------------------
# The incremental cache
# --------------------------------------------------------------------------


def _report_key(result):
    """Everything a report carries, for exact cold-vs-warm comparison."""
    return (
        result.findings,
        [(f, s.reason) for f, s in result.suppressed],
        result.modules_scanned,
        format_json(result),
    )


def test_cache_warm_run_is_byte_identical(tmp_path):
    config = build_project(tmp_path, CORPUS, metrics=METRICS_DOC)
    cache = tmp_path / "lint-cache.json"
    cold = run_lint(config, baseline=Baseline(), cache_path=cache)
    assert cache.exists()
    warm = run_lint(config, baseline=Baseline(), cache_path=cache)
    assert _report_key(warm) == _report_key(cold)
    # And both match the cache-less run.
    plain = run_lint(config, baseline=Baseline())
    assert _report_key(plain) == _report_key(cold)


def test_cache_invalidates_on_edit(tmp_path):
    config = build_project(tmp_path, CORPUS, metrics=METRICS_DOC)
    cache = tmp_path / "lint-cache.json"
    cold = run_lint(config, baseline=Baseline(), cache_path=cache)
    engine = src("repro/core/engine.py")
    clock_line = (engine, line_of("repro/core/engine.py", "time.time()"))
    assert clock_line in hits(cold, "RS101")
    path = tmp_path / engine
    path.write_text(
        path.read_text(encoding="utf-8").replace("t = time.time()", "t = 0.0"),
        encoding="utf-8",
    )
    warm = run_lint(config, baseline=Baseline(), cache_path=cache)
    assert hits(warm, "RS101") == set()
    # Untouched modules keep their findings.
    assert hits(warm, "RS501") == hits(cold, "RS501")


def test_cache_corrupt_file_degrades_to_cold(tmp_path):
    config = build_project(tmp_path, CORPUS, metrics=METRICS_DOC)
    cache = tmp_path / "lint-cache.json"
    cache.write_text("{not json", encoding="utf-8")
    result = run_lint(config, baseline=Baseline(), cache_path=cache)
    plain = run_lint(config, baseline=Baseline())
    assert _report_key(result) == _report_key(plain)
    # The bad cache was replaced with a valid one.
    json.loads(cache.read_text(encoding="utf-8"))


def test_cache_analyzer_fingerprint_tracks_config(tmp_path):
    import dataclasses

    from repro.analysis import analyzer_fingerprint

    config = build_project(tmp_path, CORPUS, metrics=METRICS_DOC)
    base = analyzer_fingerprint(config)
    retuned = dataclasses.replace(config, hot_modules=())
    assert analyzer_fingerprint(retuned) != base
    # Cache location is not part of the analyzer identity.
    moved = dataclasses.replace(config, cache_path=tmp_path / "elsewhere.json")
    assert analyzer_fingerprint(moved) == base


# --------------------------------------------------------------------------
# --changed scoping
# --------------------------------------------------------------------------


def _git(root, *argv):
    import subprocess

    return subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t", *argv],
        cwd=root,
        check=True,
        capture_output=True,
    )


def _git_fixture(tmp_path):
    import shutil

    if shutil.which("git") is None:
        pytest.skip("git not available")
    config = build_project(tmp_path, CORPUS, metrics=METRICS_DOC)
    try:
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-qm", "seed")
    except Exception:
        pytest.skip("git unusable in this environment")
    return config


def test_changed_paths_reverse_closure():
    from pathlib import Path

    from repro.analysis import changed_paths

    modules = {
        "src/repro/a.py": ("repro.a", ["repro.b.helper"]),
        "src/repro/b.py": ("repro.b", []),
        "src/repro/c.py": ("repro.c", ["repro.a"]),
        "src/repro/d.py": ("repro.d", []),
    }
    scope = changed_paths(
        Path("/nonexistent"), modules, changed=["src/repro/b.py"]
    )
    # b changed; a imports (a member of) b; c imports a; d is untouched.
    assert scope == ("src/repro/a.py", "src/repro/b.py", "src/repro/c.py")


def test_changed_only_scopes_and_follows_importers(tmp_path):
    config = _git_fixture(tmp_path)
    names_rel = "src/repro/obs/names.py"
    path = tmp_path / names_rel
    path.write_text(
        path.read_text(encoding="utf-8") + "# touched\n", encoding="utf-8"
    )
    scoped = run_lint(config, baseline=Baseline(), changed_only=True)
    full = run_lint(config, baseline=Baseline())
    paths = {f.path for f in scoped.findings}
    # The edited module and its importers are in scope...
    assert src("repro/core/engine.py") in paths
    # ...modules that never (transitively) import it are not.
    assert src("repro/core/recovery/snapshot.py") not in paths
    # Scoping only filters — every scoped finding is a full-run finding.
    assert set(scoped.findings) <= set(full.findings)


def test_changed_only_with_clean_tree_reports_nothing(tmp_path):
    config = _git_fixture(tmp_path)
    result = run_lint(config, baseline=Baseline(), changed_only=True)
    assert result.findings == []


def test_changed_only_outside_git_falls_back_to_full(tmp_path):
    config = build_project(tmp_path, CORPUS, metrics=METRICS_DOC)
    scoped = run_lint(config, baseline=Baseline(), changed_only=True)
    full = run_lint(config, baseline=Baseline())
    assert scoped.findings == full.findings


# --------------------------------------------------------------------------
# Mutation acceptance: the rules catch the regressions they were built for
# --------------------------------------------------------------------------

_LIFECYCLE_RULES = ("RS601", "RS602", "RS603", "RS604")
_HOT_RULES = ("RS701", "RS702", "RS703")


def _real_source(rel):
    return (default_config().src_root / rel).read_text(encoding="utf-8")


def test_mutation_dropped_close_in_shmring_init(tmp_path):
    """Deleting the attach-path close() in ShmRing.__init__ is caught."""
    rel = "repro/core/parallel/shm.py"
    source = _real_source(rel)
    handler = "                self._shm.close()\n                raise\n"
    assert handler in source  # the attach-branch error path
    config = build_project(tmp_path, {rel: source.replace(handler, "                raise\n")})
    result = run_lint(config, rules=_LIFECYCLE_RULES, baseline=Baseline())
    (finding,) = result.findings
    assert finding.rule == "RS603"
    assert finding.symbol.endswith("ShmRing.__init__")
    # The pristine copy is clean: exactly the deletion is what fires.
    pristine = build_project(tmp_path / "pristine", {rel: source})
    clean = run_lint(pristine, rules=_LIFECYCLE_RULES, baseline=Baseline())
    assert clean.findings == []


def test_mutation_per_flow_loop_in_sketches(tmp_path):
    """Adding a per-flow Python loop to the sketch hot path is caught."""
    rel = "repro/core/features/sketches.py"
    source = _real_source(rel)
    probe = "\n\ndef _probe(dataset):\n    for flow in dataset:\n        pass\n"
    config = build_project(tmp_path, {rel: source + probe})
    result = run_lint(config, rules=_HOT_RULES, baseline=Baseline())
    (finding,) = result.findings
    assert finding.rule == "RS701"
    assert finding.symbol.endswith("_probe")
    pristine = build_project(tmp_path / "pristine", {rel: source})
    clean = run_lint(pristine, rules=_HOT_RULES, baseline=Baseline())
    assert clean.findings == []
