"""Tests for per-region reflector pools."""

import numpy as np

from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import DNS, NTP


class TestReflectorPool:
    def test_deterministic(self):
        a = ReflectorPool(region=0, seed=1)
        b = ReflectorPool(region=0, seed=1)
        np.testing.assert_array_equal(a.reflectors(NTP), b.reflectors(NTP))

    def test_different_regions_mostly_disjoint(self):
        a = ReflectorPool(region=0, seed=1, shared_fraction=0.05)
        b = ReflectorPool(region=1, seed=2, shared_fraction=0.05)
        overlap = a.overlap(b, NTP)
        assert overlap < 0.1

    def test_shared_fraction_creates_overlap(self):
        a = ReflectorPool(region=0, seed=1, shared_fraction=0.2)
        b = ReflectorPool(region=1, seed=2, shared_fraction=0.2)
        assert a.overlap(b, NTP) > 0.0

    def test_zero_shared_fraction_fully_disjoint(self):
        a = ReflectorPool(region=0, seed=1, shared_fraction=0.0)
        b = ReflectorPool(region=1, seed=2, shared_fraction=0.0)
        assert a.overlap(b, NTP) == 0.0

    def test_vectors_have_distinct_pools(self):
        pool = ReflectorPool(region=0, seed=1)
        assert set(pool.reflectors(NTP)) != set(pool.reflectors(DNS))

    def test_sample_is_skewed(self, rng):
        """A minority of reflectors should carry most attack flows."""
        pool = ReflectorPool(region=0, seed=1)
        samples = pool.sample(NTP, rng, 5000)
        _, counts = np.unique(samples, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_share = counts[: max(1, counts.size // 10)].sum() / counts.sum()
        assert top_share > 0.3

    def test_sample_draws_from_pool(self, rng):
        pool = ReflectorPool(region=0, seed=1)
        samples = pool.sample("NTP", rng, 100)
        assert np.isin(samples, pool.reflectors("NTP")).all()

    def test_overlap_identity(self):
        pool = ReflectorPool(region=0, seed=1)
        assert pool.overlap(pool, NTP) == 1.0
