"""End-to-end IXP workload generation.

:class:`WorkloadGenerator` drives one vantage point over simulated days:
benign background traffic, DDoS attack events, the blackhole
announcements members issue in response, and benign collateral traffic
towards blackholed victims. The output mirrors what the paper's online
recording pipeline keeps (Table 2, footnote): *flow records* for
blackholed traffic plus a thinned benign sample — the unbalanced bulk of
benign traffic is never materialised, only counted — and per-bin volume
counters from which traffic shares (Fig. 3a) and raw dataset sizes
(Table 2) are derived.

Label noise is generated, not assumed: some attacks are never blackholed
(their flows stay in the benign class), blackholed victims keep receiving
benign collateral traffic (benign flows inside the blackhole class), and
a small rate of precautionary blackholes covers purely benign targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.bgp.blackhole import BlackholeRegistry
from repro.bgp.community import BLACKHOLE
from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.prefix import Prefix
from repro.netflow.dataset import FlowDataset
from repro.traffic.attacks import AttackEvent, AttackGenerator
from repro.traffic.benign import BenignTrafficGenerator
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import ALL_VECTORS, DDoSVector

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids circular import
    from repro.ixp.fabric import IXPFabric

#: Mean size of a benign flow in bytes, used to convert the volume model
#: into estimated true flow counts.
_MEAN_BENIGN_FLOW_BYTES = 6000.0

#: Typical total traffic of the reference IXP per one-minute bin, in
#: bytes. Chosen so attack traffic lands well below 1 % of the total
#: (Fig. 3a). Scaled by ``IXPProfile.traffic_scale``.
_BASE_BYTES_PER_BIN = 4.0e9

#: Relative popularity of attack vectors in blackholing traffic. DNS and
#: NTP dominate; WS-Discovery is booter-available but hardly blackholed
#: (paper Fig. 4b).
DEFAULT_VECTOR_POPULARITY: dict[str, float] = {
    "DNS": 0.26, "NTP": 0.22, "SNMP": 0.09, "LDAP": 0.12, "SSDP": 0.08,
    "memcached": 0.05, "Apple RD": 0.04, "chargen": 0.025, "MSSQL": 0.02,
    "rpcbind": 0.015, "DNS (TCP)": 0.012, "NetBios": 0.012, "RIP": 0.012,
    "OpenVPN": 0.012, "TFTP": 0.012, "Ubiq. SD": 0.012, "WCCP": 0.01,
    "DHCPDisc.": 0.01, "GRE": 0.015, "Micr. TS": 0.012,
    "rpcbind (TCP)": 0.005, "WS-Discovery": 0.002, "UDP flood": 0.12,
}


#: Vectors every vantage point sees (the global workhorses); the rest
#: varies by site.
_UNIVERSAL_VECTORS = ("DNS", "NTP", "LDAP", "SSDP", "UDP flood")

#: Vectors pinned to their (tiny) base popularity: present on booter
#: menus but hardly ever blackholed (the paper's Fig. 4b example is
#: WS-Discovery). They are excluded from site jitter, the popularity
#: walk boost, and the new-vector schedule.
_PINNED_MINOR_VECTORS = ("WS-Discovery",)


def _site_popularity(seed: int) -> dict[str, float]:
    """Site-specific vector popularity.

    The paper observes that "not all DDoS vectors are visible at all
    IXPs" (§6.4): vantage points differ in which amplification vectors
    their members attract. Each site keeps the universal vectors, drops
    a seeded subset of the minor ones entirely, and jitters the weights
    of the rest. This is what makes naive cross-IXP model transfer
    degrade (Fig. 12, left) while WoE re-localisation recovers it.
    """
    rng = np.random.default_rng(seed * 31 + 17)
    popularity: dict[str, float] = {}
    minor = [n for n in DEFAULT_VECTOR_POPULARITY if n not in _UNIVERSAL_VECTORS]
    dropped = set(
        rng.choice(minor, size=max(1, len(minor) // 3), replace=False).tolist()
    )
    for name, weight in DEFAULT_VECTOR_POPULARITY.items():
        if name in dropped:
            continue
        if name in _PINNED_MINOR_VECTORS:
            popularity[name] = weight
            continue
        if name in _UNIVERSAL_VECTORS:
            jitter = float(rng.lognormal(0.0, 0.25))
        else:
            jitter = float(rng.lognormal(0.0, 0.7))
        popularity[name] = weight * jitter
    return popularity


def _default_vector_schedule(
    seed: int, seconds_per_day: int, popularity: dict[str, float]
) -> tuple[dict[str, int], dict[str, float]]:
    """Seeded mid-stream arrival days for a subset of minor vectors.

    Newly arriving vectors are *prominent*: attackers pile onto fresh
    amplification vectors (cf. the memcached wave of 2018), so scheduled
    vectors get a popularity boost. Returns (first-seen map, boosted
    popularity).
    """
    rng = np.random.default_rng(seed * 31 + 23)
    schedule: dict[str, int] = {}
    boosted = dict(popularity)
    for name in sorted(popularity):
        if name in _UNIVERSAL_VECTORS or name in _PINNED_MINOR_VECTORS:
            continue
        if rng.random() < 0.6:
            day = int(rng.integers(2, 31))
            schedule[name] = day * seconds_per_day
            boosted[name] = popularity[name] * 3.0
    return schedule, boosted


@dataclass
class BinStatistics:
    """Per-bin true volume counters kept by the online recorder."""

    bins: np.ndarray  # bin index (time // 60)
    total_bytes: np.ndarray
    blackhole_bytes: np.ndarray
    total_flows: np.ndarray  # estimated true flow count (unthinned)

    def blackhole_share(self) -> np.ndarray:
        """Blackholed share of total traffic per bin."""
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(
                self.total_bytes > 0, self.blackhole_bytes / self.total_bytes, 0.0
            )
        return share


@dataclass
class WorkloadCapture:
    """Everything recorded at one vantage point for one period."""

    profile_name: str
    start: int
    end: int
    flows: FlowDataset  # time-sorted; blackhole column not yet set
    updates: list[Update]
    events: list[AttackEvent]
    bin_stats: BinStatistics
    #: Vector names per event (aligned with ``events``).
    event_vectors: list[tuple[str, ...]] = field(default_factory=list)

    def registry(self) -> BlackholeRegistry:
        """Build the blackhole registry from the captured BGP feed."""
        registry = BlackholeRegistry()
        registry.apply_all(self.updates)
        return registry

    def labeled_flows(self) -> FlowDataset:
        """Flows with the blackhole label derived from the BGP feed."""
        return self.registry().label_flows(self.flows, horizon=self.end)


class WorkloadGenerator:
    """Generates the traffic and BGP activity of one vantage point."""

    def __init__(
        self,
        fabric: "IXPFabric",
        vector_first_seen: Optional[dict[str, int]] = None,
        vector_popularity: Optional[dict[str, float]] = None,
        benign_thinning: float = 1.0 / 300.0,
        reflector_churn: float = 0.15,
        popularity_walk_sigma: float = 0.15,
    ):
        """
        Parameters
        ----------
        fabric:
            The vantage point (members, customer space, sampler).
        vector_first_seen:
            Optional map vector name -> earliest time (seconds) the vector
            is used by attackers; drives the Fig. 13 "new vector"
            scenario. Unlisted vectors are available from t=0.
        vector_popularity:
            Relative weights for vector choice; defaults to
            :data:`DEFAULT_VECTOR_POPULARITY`.
        benign_thinning:
            Fraction of true benign traffic materialised as flow records
            (the online recorder's benign sample rate).
        reflector_churn:
            Fraction of each vector's reflector pool replaced per
            simulated day; with the popularity walk this is what makes
            models age (paper §6.3: "new attack vectors or new DDoS
            reflection hosts").
        popularity_walk_sigma:
            Per-day log-normal step of the vector-popularity random
            walk.
        """
        self.fabric = fabric
        profile = fabric.profile
        if vector_popularity is None:
            popularity = _site_popularity(profile.seed)
        else:
            popularity = dict(vector_popularity)
        if vector_first_seen is None:
            # Default arrival schedule: a seeded subset of the minor
            # vectors only starts being abused partway through the
            # simulation — the paper's first driver of temporal drift
            # ("new attack vectors", §6.3) and the mechanism behind
            # Fig. 13. Explicit schedules override this entirely.
            self._first_seen, popularity = _default_vector_schedule(
                profile.seed, profile.seconds_per_day, popularity
            )
        else:
            self._first_seen = dict(vector_first_seen)
        self._vectors = [v for v in ALL_VECTORS if popularity.get(v.name, 0.0) > 0.0]
        self._weights = np.array([popularity[v.name] for v in self._vectors])
        self._weights = self._weights / self._weights.sum()
        self.benign_thinning = benign_thinning
        self._walk_sigma = popularity_walk_sigma
        self._walk_cache: dict[int, np.ndarray] = {}

        self._pool = ReflectorPool(
            profile.region, seed=profile.seed * 7 + 1, churn_fraction=reflector_churn
        )
        self._attack_gen = AttackGenerator(self._pool, member_macs=self.fabric.member_macs)
        self._benign_gen = BenignTrafficGenerator(
            seed=profile.seed * 7 + 2, member_macs=self.fabric.member_macs
        )
        static_rng = np.random.default_rng(profile.seed * 7 + 3)
        space = fabric.customer_space
        self._popular_targets = space.sample(static_rng, 512, replace=False)
        # Destination popularity is heavy-tailed (a few CDN/eyeball
        # prefixes receive most flows); this head weight is what lets the
        # balancer find benign IPs with per-IP flow counts comparable to
        # attack victims (Fig. 3c).
        ranks = np.arange(1, self._popular_targets.shape[0] + 1, dtype=np.float64)
        weights = ranks ** -1.6
        self._popular_weights = weights / weights.sum()
        self._victim_pool = space.sample(static_rng, 1024, replace=False)
        eyeballs = fabric.eyeball_members or fabric.members
        self._victim_asns = np.array([m.asn for m in eyeballs], dtype=np.int64)

    # ------------------------------------------------------------------
    def _walk_multipliers(self, day: int) -> np.ndarray:
        """Cumulative popularity-walk multipliers at ``day`` (cached)."""
        if self._walk_sigma <= 0.0 or day <= 0:
            return np.ones(len(self._vectors))
        cached = self._walk_cache.get(day)
        if cached is not None:
            return cached
        previous = self._walk_multipliers(day - 1)
        rng = np.random.default_rng(
            np.random.SeedSequence([self.fabric.profile.seed, day, 0x3A1C])
        )
        steps = rng.normal(0.0, self._walk_sigma, size=len(self._vectors))
        multipliers = previous * np.exp(steps)
        self._walk_cache[day] = multipliers
        return multipliers

    def _available_vectors(
        self, time: int, day: int
    ) -> tuple[list[DDoSVector], np.ndarray]:
        multipliers = self._walk_multipliers(day)
        available = []
        weights = []
        for vector, weight, multiplier in zip(self._vectors, self._weights, multipliers):
            if self._first_seen.get(vector.name, 0) <= time:
                if vector.name in _PINNED_MINOR_VECTORS:
                    multiplier = 1.0
                available.append(vector)
                weights.append(weight * multiplier)
        w = np.asarray(weights, dtype=np.float64)
        return available, w / w.sum()

    def _day_rng(self, day: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.fabric.profile.seed, day])
        )

    def _draw_events(
        self, rng: np.random.Generator, day: int, day_start: int, day_end: int
    ) -> tuple[list[AttackEvent], list[tuple[str, ...]]]:
        profile = self.fabric.profile
        n_attacks = int(rng.poisson(profile.attacks_per_day))
        events: list[AttackEvent] = []
        vectors_used: list[tuple[str, ...]] = []
        for _ in range(n_attacks):
            start = int(rng.integers(day_start, day_end))
            duration = int(np.clip(rng.lognormal(math.log(600.0), 0.8), 180, 14400))
            available, weights = self._available_vectors(start, day)
            n_vectors = min(len(available), 1 + int(rng.random() < 0.25) + int(rng.random() < 0.08))
            idx = rng.choice(len(available), size=n_vectors, replace=False, p=weights)
            chosen = tuple(available[i] for i in idx)
            # A minority of victims are popular destinations that also
            # receive plenty of benign traffic (collateral inside the
            # blackhole). Attacks against such well-provisioned targets
            # are sized up by the attacker to overwhelm them.
            popular_victim = rng.random() < 0.15
            if popular_victim:
                victim = int(rng.choice(self._popular_targets))
            else:
                victim = int(rng.choice(self._victim_pool))
            base_intensity = profile.attack_intensity * (4.0 if popular_victim else 1.0)
            intensity = float(
                np.clip(rng.lognormal(math.log(base_intensity), 0.5), 5.0, 1000.0)
            )
            events.append(
                AttackEvent(
                    victim=victim,
                    vectors=chosen,
                    start=start,
                    end=start + duration,
                    flows_per_minute=intensity,
                    blackholed=bool(rng.random() < profile.blackhole_probability),
                    reaction_delay=int(np.clip(rng.exponential(30.0), 5, 90)),
                )
            )
            vectors_used.append(tuple(v.name for v in chosen))
        return events, vectors_used

    def _blackhole_updates(
        self, rng: np.random.Generator, event: AttackEvent, horizon: int
    ) -> list[Update]:
        if not event.blackholed:
            return []
        announce_time = event.start + event.reaction_delay
        if announce_time >= horizon:
            return []
        # Almost always host routes (RFC 7999 practice at IXPs, [19]);
        # occasionally a covering /28 that also blackholes neighbours.
        if rng.random() < 0.97:
            prefix = Prefix.host(event.victim)
        else:
            prefix = Prefix(network=event.victim & 0xFFFFFFF0, length=28)
        origin = int(rng.choice(self._victim_asns))
        updates: list[Update] = [
            Announcement(
                prefix=prefix,
                origin_asn=origin,
                time=announce_time,
                as_path=(origin,),
                communities=frozenset({BLACKHOLE}),
            )
        ]
        # Mitigation tooling withdraws the blackhole shortly after the
        # attack traffic subsides; long-held blackholes would fill the
        # positive class with benign-only records.
        hold = int(np.clip(rng.exponential(30.0), 10, 90))
        withdraw_time = event.end + hold
        if withdraw_time < horizon:
            updates.append(
                Withdrawal(prefix=prefix, origin_asn=origin, time=withdraw_time)
            )
        return updates

    def _spurious_blackholes(
        self, rng: np.random.Generator, day_start: int, day_end: int, horizon: int
    ) -> list[Update]:
        profile = self.fabric.profile
        rate = profile.attacks_per_day * profile.spurious_blackhole_probability
        updates: list[Update] = []
        for _ in range(int(rng.poisson(rate))):
            target = int(rng.choice(self._popular_targets))
            start = int(rng.integers(day_start, day_end))
            duration = int(np.clip(rng.exponential(240.0), 120, 600))
            origin = int(rng.choice(self._victim_asns))
            prefix = Prefix.host(target)
            updates.append(
                Announcement(
                    prefix=prefix,
                    origin_asn=origin,
                    time=start,
                    as_path=(origin,),
                    communities=frozenset({BLACKHOLE}),
                )
            )
            if start + duration < horizon:
                updates.append(
                    Withdrawal(prefix=prefix, origin_asn=origin, time=start + duration)
                )
        return updates

    def _collateral(
        self, rng: np.random.Generator, events: Sequence[AttackEvent], horizon: int
    ) -> FlowDataset:
        """Benign collateral flows towards attacked victims."""
        parts = []
        for event in events:
            end = min(event.end, horizon)
            if end <= event.start:
                continue
            n_bins = max(1, (end - event.start) // 60)
            targets = np.full(n_bins * 2, event.victim, dtype=np.uint32)
            parts.append(
                self._benign_gen.generate(
                    rng, targets, event.start, end, flows_per_target_mean=1.5
                )
            )
        return FlowDataset.concat(parts)

    # ------------------------------------------------------------------
    def generate(self, start_day: int, n_days: int) -> WorkloadCapture:
        """Simulate ``n_days`` starting at day index ``start_day``."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        profile = self.fabric.profile
        spd = profile.seconds_per_day
        sim_start = start_day * spd
        sim_end = (start_day + n_days) * spd

        all_events: list[AttackEvent] = []
        all_vectors: list[tuple[str, ...]] = []
        all_updates: list[Update] = []
        flow_parts: list[FlowDataset] = []

        for day in range(start_day, start_day + n_days):
            rng = self._day_rng(day)
            day_start, day_end = day * spd, (day + 1) * spd

            events, vectors_used = self._draw_events(rng, day, day_start, day_end)
            all_events.extend(events)
            all_vectors.extend(vectors_used)

            for event in events:
                flows = self._attack_gen.generate(
                    rng, event, window_start=sim_start, window_end=sim_end, epoch=day
                )
                if len(flows):
                    flow_parts.append(flows)
                all_updates.extend(self._blackhole_updates(rng, event, sim_end))

            all_updates.extend(self._spurious_blackholes(rng, day_start, day_end, sim_end))

            # Thinned benign sample: popular targets plus churn.
            n_bins = profile.bins_per_day
            n_targets = profile.benign_targets_per_minute * n_bins
            churn = self.fabric.customer_space.sample(rng, max(1, n_targets // 10))
            targets = np.concatenate(
                [
                    rng.choice(
                        self._popular_targets, size=n_targets, p=self._popular_weights
                    ),
                    churn,
                ]
            )
            flow_parts.append(
                self._benign_gen.generate(
                    rng,
                    targets,
                    day_start,
                    day_end,
                    flows_per_target_mean=profile.benign_flows_per_target,
                )
            )
            flow_parts.append(self._collateral(rng, events, sim_end))

        flows = FlowDataset.concat(flow_parts).sort_by_time()
        all_updates.sort(key=lambda u: u.time)
        bin_stats = self._volume_model(flows, all_updates, sim_start, sim_end)
        return WorkloadCapture(
            profile_name=profile.name,
            start=sim_start,
            end=sim_end,
            flows=flows,
            updates=all_updates,
            events=all_events,
            bin_stats=bin_stats,
            event_vectors=all_vectors,
        )

    def _volume_model(
        self,
        flows: FlowDataset,
        updates: list[Update],
        sim_start: int,
        sim_end: int,
    ) -> BinStatistics:
        """Derive per-bin true volume counters.

        Blackholed bytes come from the actual recorded flows (those are
        kept in full); the benign total is the thinned benign sample
        scaled back up by the thinning factor, modulated by a diurnal
        pattern via the sample itself.
        """
        profile = self.fabric.profile
        bins = np.arange(sim_start // 60, sim_end // 60)
        n_bins = bins.shape[0]

        registry = BlackholeRegistry()
        registry.apply_all(updates)
        blackholed = registry.match_flows(flows, horizon=sim_end)

        flow_bins = (flows.time // 60) - bins[0]
        valid = (flow_bins >= 0) & (flow_bins < n_bins)
        bh_bytes = np.bincount(
            flow_bins[valid & blackholed],
            weights=flows.bytes[valid & blackholed],
            minlength=n_bins,
        )
        benign_sample_bytes = np.bincount(
            flow_bins[valid & ~blackholed],
            weights=flows.bytes[valid & ~blackholed],
            minlength=n_bins,
        )
        # Scale the benign sample back to the true volume and add the
        # baseline bulk that is never materialised as flows.
        base = _BASE_BYTES_PER_BIN * profile.traffic_scale
        phase = 2.0 * np.pi * (bins % profile.bins_per_day) / profile.bins_per_day
        diurnal = 1.0 + 0.35 * np.sin(phase - np.pi / 2.0)
        benign_true_bytes = benign_sample_bytes / self.benign_thinning + base * diurnal
        total_bytes = benign_true_bytes + bh_bytes
        total_flows = (benign_true_bytes / _MEAN_BENIGN_FLOW_BYTES).astype(np.int64)
        total_flows += np.bincount(flow_bins[valid & blackholed], minlength=n_bins)
        return BinStatistics(
            bins=bins,
            total_bytes=total_bytes,
            blackhole_bytes=bh_bytes,
            total_flows=total_flows,
        )
