"""Mergeable sketches for approximate per-target aggregation.

The exact aggregation path (:mod:`repro.core.features.aggregation`)
materialises every flow of a bin before grouping, so per-bin memory
grows linearly with flow *and* distinct-target count — exactly what
carpet-bombing and mass-blackhole workloads explode. This module is the
``sketch`` setting of the aggregation knob: per-worker, per-bin
**count-min sketches** absorb flows in bounded memory, shard sketches
merge bitwise-deterministically at the coordinator, and records are
built once from the merged state (OctoSketch-style counting workers
under a scoring coordinator).

Structures
----------
:class:`CountMinSketch`
    Integer count-min table with Kirsch–Mitzenmacher double hashing on
    a SplitMix64 finisher (platform-stable; ``hash()`` is salted per
    process and banned by lint rule RS104). Estimates are one-sided:
    ``query(k) >= true(k)`` always, and the overshoot exceeds
    ``(e / width) * total`` with probability at most ``exp(-depth)``.
:class:`CardinalitySketch`
    Count-min-of-HyperLogLog: per-target distinct-count estimation
    (distinct source IPs per victim) in sub-linear memory. Registers
    merge by elementwise ``max``.
:class:`SketchAggregator`
    Per-bin sketch sets plus bounded exact *candidate* tracking (the
    first ``hh_capacity`` distinct targets per bin, and per tracked
    target the first ``key_capacity`` distinct keys per categorical —
    both arrival-order semantics, which target-disjoint sharding keeps
    partition-invariant). :meth:`SketchAggregator.build_records`
    re-queries the merged sketches to emit a schema-compatible
    :class:`~repro.core.features.aggregation.AggregatedDataset`.

Merge determinism
-----------------
Count-min tables hold exact int64 sums (bincount accumulates integer
weights in float64, exact below 2**53, cast back per update), so merged
tables are **bitwise identical** to a single-stream sketch for any
partition of the input and any merge order. HLL registers merge by
``max`` — associative, commutative, idempotent. That is what keeps
sketch-mode verdicts identical across shard counts; the full contract
(and the capacity caveats) is documented in ``docs/SKETCHES.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.core.features import schema
from repro.core.features.aggregation import AggregatedDataset
from repro.netflow.dataset import BIN_SECONDS, FlowDataset
from repro.obs import names as metric_names

__all__ = [
    "SketchParams",
    "CountMinSketch",
    "CardinalitySketch",
    "SketchAggregator",
    "sketch_aggregate",
]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """Scalar SplitMix64 finisher (python-int port of the vector mix)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finisher, vectorised — the same platform-stable mix
    :mod:`repro.core.parallel.sharding` uses for shard assignment."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _bit_length(w: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for uint64 arrays (0 -> 0)."""
    w = w.copy()
    out = np.zeros(w.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = w >= (np.uint64(1) << np.uint64(shift))
        out[mask] += shift
        w[mask] >>= np.uint64(shift)
    out += (w > 0).astype(np.int64)
    return out


#: Seed-derivation roles: each sketch family inside one aggregator gets
#: decorrelated hash salts from the single user-facing seed.
_ROLE_TARGET = 1
_ROLE_CARDINALITY = 2
_ROLE_CARD_ITEM = 3
_ROLE_PAIR_BASE = 16
_ROLE_CAT_SALT_BASE = 64


def _role_seed(seed: int, role: int) -> int:
    return _mix64((seed & _MASK64) ^ _mix64(role))


@dataclass(frozen=True)
class SketchParams:
    """Accuracy/memory knob for sketch-mode aggregation.

    ``epsilon``/``delta`` set the count-min dimensions to the textbook
    ``width = ceil(e / epsilon)``, ``depth = ceil(ln(1 / delta))``,
    giving the one-sided guarantee ``est - true <= epsilon * N`` with
    probability at least ``1 - delta`` per query (N = the bin's total
    weight). ``hh_capacity``/``key_capacity`` bound the exact candidate
    tracking (first-arrival semantics, see ``docs/SKETCHES.md``);
    cardinality knobs size the distinct-source estimator.
    """

    epsilon: float = 0.005
    delta: float = 0.01
    seed: int = 0x1CE
    hh_capacity: int = 4096
    key_capacity: int = 32
    cardinality_registers: int = 64
    cardinality_depth: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if self.hh_capacity < 1:
            raise ValueError("hh_capacity must be >= 1")
        if self.key_capacity < schema.RANKS:
            raise ValueError(f"key_capacity must be >= RANKS ({schema.RANKS})")
        m = self.cardinality_registers
        if m < 16 or m & (m - 1):
            raise ValueError("cardinality_registers must be a power of two >= 16")
        if self.cardinality_depth < 1:
            raise ValueError("cardinality_depth must be >= 1")

    @property
    def width(self) -> int:
        return int(math.ceil(math.e / self.epsilon))

    @property
    def depth(self) -> int:
        return int(math.ceil(math.log(1.0 / self.delta)))

    def error_bound(self, total: int) -> float:
        """The asserted bound: ``est - true <= epsilon * total``."""
        return self.epsilon * float(total)


class CountMinSketch:
    """Mergeable integer count-min sketch.

    The table is ``(depth, width)`` int64; row buckets come from
    Kirsch–Mitzenmacher double hashing, ``(h1 + d * h2) % width``, with
    both base hashes derived from the seed through SplitMix64. Updates
    add, merges add — both exact integer operations — so any partition
    of a stream merges back to the bitwise-identical table.
    """

    __slots__ = ("width", "depth", "seed", "table", "total", "_salt_a", "_salt_b")

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int,
        table: Optional[np.ndarray] = None,
        total: int = 0,
    ):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._salt_a = np.uint64(_role_seed(seed, 0))
        self._salt_b = np.uint64(_role_seed(seed, 1))
        if table is None:
            table = np.zeros((self.depth, self.width), dtype=np.int64)
        elif table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match (depth, width)")
        self.table = table
        self.total = int(total)

    # -- hashing --------------------------------------------------------
    def hash_keys(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The two base hashes for ``keys`` (reusable across updates of
        sketches constructed with the same seed)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _splitmix64(keys ^ self._salt_a), _splitmix64(keys ^ self._salt_b)

    def _buckets(self, h1: np.ndarray, h2: np.ndarray, d: int) -> np.ndarray:
        return ((h1 + np.uint64(d) * h2) % np.uint64(self.width)).astype(np.intp)

    # -- updates --------------------------------------------------------
    def update(self, keys: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        """Add ``weights`` (default: 1 per key) under each key."""
        h1, h2 = self.hash_keys(keys)
        self.update_hashed(h1, h2, weights)

    def update_hashed(
        self,
        h1: np.ndarray,
        h2: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Like :meth:`update` but reusing precomputed base hashes."""
        if h1.shape[0] == 0:
            return
        w = None if weights is None else np.ascontiguousarray(weights, dtype=np.float64)
        for d in range(self.depth):
            idx = self._buckets(h1, h2, d)
            if w is None:
                self.table[d] += np.bincount(idx, minlength=self.width)
            else:
                # Integer weights sum exactly in float64 below 2**53;
                # the cast back to int64 keeps merges bit-exact.
                self.table[d] += np.bincount(
                    idx, weights=w, minlength=self.width
                ).astype(np.int64)
        self.total += int(h1.shape[0]) if w is None else int(w.sum())

    # -- queries --------------------------------------------------------
    def query(self, keys: np.ndarray) -> np.ndarray:
        """Point estimates (int64, one-sided: never below the truth)."""
        h1, h2 = self.hash_keys(keys)
        est = np.full(h1.shape, np.iinfo(np.int64).max, dtype=np.int64)
        for d in range(self.depth):
            np.minimum(est, self.table[d][self._buckets(h1, h2, d)], out=est)
        return est

    def error_bound(self) -> float:
        """Additive bound not exceeded with probability ``1 - delta``."""
        return math.e / self.width * self.total

    # -- merge / state --------------------------------------------------
    def _check_compatible(self, other: "CountMinSketch") -> None:
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("cannot merge sketches with different geometry or seed")

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Fold another sketch in (exact int64 addition — associative,
        commutative, and bitwise order-independent)."""
        self._check_compatible(other)
        self.table += other.table
        self.total += other.total
        return self

    @property
    def memory_bytes(self) -> int:
        return int(self.table.nbytes)

    def to_state(self) -> dict:
        """Plain-array state for pipe transport / restart re-broadcast."""
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "table": self.table,
            "total": self.total,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CountMinSketch":
        return cls(
            state["width"], state["depth"], state["seed"],
            table=state["table"], total=state["total"],
        )


class CardinalitySketch:
    """Count-min-of-HyperLogLog distinct-count estimator.

    ``table`` is ``(depth, width, registers)`` uint8. A (key, item)
    update routes the key to one bucket per row (same double hashing as
    :class:`CountMinSketch`) and folds the item into that bucket's HLL
    registers. Colliding keys only *raise* registers, so taking the
    minimum estimate across rows bounds the overshoot; registers merge
    by elementwise ``max``, which is order-independent and idempotent.
    """

    __slots__ = (
        "width", "depth", "registers", "seed", "table",
        "_salt_a", "_salt_b", "_item_salt", "_log2m",
    )

    def __init__(
        self,
        width: int,
        depth: int,
        registers: int,
        seed: int,
        table: Optional[np.ndarray] = None,
    ):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        if registers < 16 or registers & (registers - 1):
            raise ValueError("registers must be a power of two >= 16")
        self.width = int(width)
        self.depth = int(depth)
        self.registers = int(registers)
        self.seed = int(seed)
        self._salt_a = np.uint64(_role_seed(seed, 0))
        self._salt_b = np.uint64(_role_seed(seed, 1))
        self._item_salt = np.uint64(_role_seed(seed, 2))
        self._log2m = int(registers).bit_length() - 1
        if table is None:
            table = np.zeros((self.depth, self.width, self.registers), dtype=np.uint8)
        elif table.shape != (self.depth, self.width, self.registers):
            raise ValueError("table shape does not match (depth, width, registers)")
        self.table = table

    def update(self, keys: np.ndarray, items: np.ndarray) -> None:
        """Fold one item observation per key into the registers."""
        if keys.shape[0] == 0:
            return
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        items = np.ascontiguousarray(items, dtype=np.uint64)
        h1 = _splitmix64(keys ^ self._salt_a)
        h2 = _splitmix64(keys ^ self._salt_b)
        hs = _splitmix64(items ^ self._item_salt)
        reg = (hs & np.uint64(self.registers - 1)).astype(np.intp)
        w = hs >> np.uint64(self._log2m)
        rho = ((64 - self._log2m + 1) - _bit_length(w)).astype(np.uint8)
        for d in range(self.depth):
            bucket = ((h1 + np.uint64(d) * h2) % np.uint64(self.width)).astype(np.intp)
            np.maximum.at(self.table[d], (bucket, reg), rho)

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Distinct-count estimates (float64) per key, min across rows."""
        if keys.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        h1 = _splitmix64(keys ^ self._salt_a)
        h2 = _splitmix64(keys ^ self._salt_b)
        m = self.registers
        alpha = 0.7213 / (1.0 + 1.079 / m)
        est = np.full(keys.shape, np.inf, dtype=np.float64)
        for d in range(self.depth):
            bucket = ((h1 + np.uint64(d) * h2) % np.uint64(self.width)).astype(np.intp)
            regs = self.table[d][bucket].astype(np.float64)
            raw = alpha * m * m / np.power(2.0, -regs).sum(axis=1)
            zeros = (regs == 0).sum(axis=1)
            with np.errstate(divide="ignore"):
                linear = m * np.log(np.where(zeros > 0, m / np.maximum(zeros, 1), 1.0))
            row = np.where((raw <= 2.5 * m) & (zeros > 0), linear, raw)
            np.minimum(est, row, out=est)
        return est

    def merge(self, other: "CardinalitySketch") -> "CardinalitySketch":
        if (self.width, self.depth, self.registers, self.seed) != (
            other.width, other.depth, other.registers, other.seed
        ):
            raise ValueError("cannot merge sketches with different geometry or seed")
        np.maximum(self.table, other.table, out=self.table)
        return self

    @property
    def memory_bytes(self) -> int:
        return int(self.table.nbytes)

    def to_state(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "registers": self.registers,
            "seed": self.seed,
            "table": self.table,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CardinalitySketch":
        return cls(
            state["width"], state["depth"], state["registers"],
            state["seed"], table=state["table"],
        )


class _BinSketch:
    """All sketch state for one time bin (internal to the aggregator)."""

    __slots__ = (
        "params", "flows", "bytes", "packets", "cardinality",
        "pair_bytes", "pair_packets", "_cat_salt",
        "_slots", "_blackhole", "_keys",
    )

    def __init__(self, params: SketchParams):
        self.params = params
        target_seed = _role_seed(params.seed, _ROLE_TARGET)
        self.flows = CountMinSketch(params.width, params.depth, target_seed)
        self.bytes = CountMinSketch(params.width, params.depth, target_seed)
        self.packets = CountMinSketch(params.width, params.depth, target_seed)
        self.cardinality = CardinalitySketch(
            params.width,
            params.cardinality_depth,
            params.cardinality_registers,
            _role_seed(params.seed, _ROLE_CARDINALITY),
        )
        self.pair_bytes: dict[str, CountMinSketch] = {}
        self.pair_packets: dict[str, CountMinSketch] = {}
        self._cat_salt: dict[str, np.uint64] = {}
        for i, cat in enumerate(schema.CATEGORICALS):
            pair_seed = _role_seed(params.seed, _ROLE_PAIR_BASE + i)
            self.pair_bytes[cat] = CountMinSketch(params.width, params.depth, pair_seed)
            self.pair_packets[cat] = CountMinSketch(params.width, params.depth, pair_seed)
            self._cat_salt[cat] = np.uint64(
                _role_seed(params.seed, _ROLE_CAT_SALT_BASE + i)
            )
        # Candidate tracking: first-arrival target slots and, per slot
        # and categorical, insertion-ordered candidate key dicts (dicts
        # double as deterministic ordered sets — RS103 keeps real sets
        # away from anything order-sensitive).
        self._slots: dict[int, int] = {}
        self._blackhole: list[bool] = []
        self._keys: dict[str, list[dict[int, None]]] = {
            cat: [] for cat in schema.CATEGORICALS
        }

    # -- ingest ---------------------------------------------------------
    def _pair_codes(self, targets: np.ndarray, cat: str, keys: np.ndarray) -> np.ndarray:
        """Combine (target, key) into one 64-bit sketch key."""
        return _splitmix64(targets ^ self._cat_salt[cat]) ^ keys.astype(np.uint64)

    def absorb(
        self,
        dst: np.ndarray,
        src: np.ndarray,
        cats: dict[str, np.ndarray],
        f_bytes: np.ndarray,
        f_packets: np.ndarray,
        blackhole: np.ndarray,
    ) -> None:
        h1, h2 = self.flows.hash_keys(dst)
        self.flows.update_hashed(h1, h2)
        self.bytes.update_hashed(h1, h2, f_bytes)
        self.packets.update_hashed(h1, h2, f_packets)
        self.cardinality.update(dst, src)
        for cat in schema.CATEGORICALS:
            codes = self._pair_codes(dst, cat, cats[cat])
            p1, p2 = self.pair_bytes[cat].hash_keys(codes)
            self.pair_bytes[cat].update_hashed(p1, p2, f_bytes)
            self.pair_packets[cat].update_hashed(p1, p2, f_packets)
        self._track(dst, cats, blackhole)

    def _register_targets(self, dst: np.ndarray) -> None:
        """Admit first-appearance targets up to ``hh_capacity``."""
        cap = self.params.hh_capacity
        if len(self._slots) >= cap:
            return
        unique, first = np.unique(dst, return_index=True)
        for t in unique[np.argsort(first, kind="stable")].tolist():
            if t in self._slots:
                continue
            if len(self._slots) >= cap:
                break
            self._slots[t] = len(self._slots)
            self._blackhole.append(False)
            for cat in schema.CATEGORICALS:
                self._keys[cat].append({})

    def _track(
        self, dst: np.ndarray, cats: dict[str, np.ndarray], blackhole: np.ndarray
    ) -> None:
        """Exact bounded bookkeeping for tracked targets.

        A target admitted on its first appearance sees *all* its flows
        from then on (selection never reorders a target's own flows),
        so first-``key_capacity``-distinct candidate keys are the same
        for the full stream and for any target-disjoint shard of it —
        the partition-invariance the engine relies on.
        """
        self._register_targets(dst)
        if not self._slots:
            return
        tracked = np.fromiter(self._slots, dtype=np.uint64, count=len(self._slots))
        sorter = np.argsort(tracked, kind="stable")
        ordered = tracked[sorter]
        pos = np.minimum(np.searchsorted(ordered, dst), len(ordered) - 1)
        mask = ordered[pos] == dst
        if not mask.any():
            return
        slots = sorter[pos[mask]]
        hit = (
            np.bincount(slots, weights=blackhole[mask].astype(np.float64),
                        minlength=len(tracked)) > 0
        )
        for i in np.flatnonzero(hit).tolist():
            self._blackhole[i] = True
        cap = self.params.key_capacity
        for cat in schema.CATEGORICALS:
            keys = cats[cat][mask]
            order = np.lexsort((keys, slots))
            s2, k2 = slots[order], keys[order]
            new = np.empty(s2.shape, dtype=bool)
            new[0] = True
            new[1:] = (np.diff(s2) != 0) | (np.diff(k2) != 0)
            seg_start = np.flatnonzero(new)
            # First arrival position of each distinct (slot, key) pair,
            # so cap admission keeps stream-arrival order across chunks.
            first_pos = np.minimum.reduceat(order, seg_start)
            arrival = np.argsort(first_pos, kind="stable")
            for slot_i, key in zip(
                s2[seg_start][arrival].tolist(), k2[seg_start][arrival].tolist()
            ):
                candidates = self._keys[cat][slot_i]
                if key not in candidates and len(candidates) < cap:
                    candidates[key] = None

    # -- merge ----------------------------------------------------------
    def merge(self, other: "_BinSketch") -> None:
        self.flows.merge(other.flows)
        self.bytes.merge(other.bytes)
        self.packets.merge(other.packets)
        self.cardinality.merge(other.cardinality)
        for cat in schema.CATEGORICALS:
            self.pair_bytes[cat].merge(other.pair_bytes[cat])
            self.pair_packets[cat].merge(other.pair_packets[cat])
        cap = self.params.key_capacity
        for t, oslot in other._slots.items():
            mine = self._slots.get(t)
            if mine is None:
                self._slots[t] = len(self._blackhole)
                self._blackhole.append(other._blackhole[oslot])
                for cat in schema.CATEGORICALS:
                    self._keys[cat].append(dict(other._keys[cat][oslot]))
                continue
            self._blackhole[mine] = self._blackhole[mine] or other._blackhole[oslot]
            for cat in schema.CATEGORICALS:
                candidates = self._keys[cat][mine]
                for key in other._keys[cat][oslot]:
                    if key not in candidates and len(candidates) < cap:
                        candidates[key] = None

    # -- accounting / state ---------------------------------------------
    def memory_bytes(self) -> int:
        """Payload accounting: sketch tables plus 8 bytes per candidate
        key and 9 per tracked target (object overhead excluded — the
        same basis the exact-mode comparison uses, see SKETCHES.md)."""
        total = (
            self.flows.memory_bytes + self.bytes.memory_bytes
            + self.packets.memory_bytes + self.cardinality.memory_bytes
        )
        for cat in schema.CATEGORICALS:
            total += self.pair_bytes[cat].memory_bytes
            total += self.pair_packets[cat].memory_bytes
            total += 8 * sum(len(d) for d in self._keys[cat])
        return total + 9 * len(self._slots)

    def to_state(self) -> dict:
        keys_state = {}
        for cat in schema.CATEGORICALS:
            per_slot = self._keys[cat]
            counts = np.array([len(d) for d in per_slot], dtype=np.int64)
            flat = np.array(
                [k for d in per_slot for k in d], dtype=np.int64
            )
            keys_state[cat] = (flat, counts)
        return {
            "flows": self.flows.to_state(),
            "bytes": self.bytes.to_state(),
            "packets": self.packets.to_state(),
            "cardinality": self.cardinality.to_state(),
            "pairs": {
                cat: (
                    self.pair_bytes[cat].to_state(),
                    self.pair_packets[cat].to_state(),
                )
                for cat in schema.CATEGORICALS
            },
            "targets": np.fromiter(self._slots, dtype=np.uint64, count=len(self._slots)),
            "blackhole": np.array(self._blackhole, dtype=bool),
            "keys": keys_state,
        }

    @classmethod
    def from_state(cls, params: SketchParams, state: dict) -> "_BinSketch":
        out = cls(params)
        out.flows = CountMinSketch.from_state(state["flows"])
        out.bytes = CountMinSketch.from_state(state["bytes"])
        out.packets = CountMinSketch.from_state(state["packets"])
        out.cardinality = CardinalitySketch.from_state(state["cardinality"])
        for cat in schema.CATEGORICALS:
            b_state, p_state = state["pairs"][cat]
            out.pair_bytes[cat] = CountMinSketch.from_state(b_state)
            out.pair_packets[cat] = CountMinSketch.from_state(p_state)
        targets = state["targets"].tolist()
        out._slots = {t: i for i, t in enumerate(targets)}
        out._blackhole = state["blackhole"].tolist()
        for cat in schema.CATEGORICALS:
            flat, counts = state["keys"][cat]
            bounds = np.cumsum(counts)[:-1]
            out._keys[cat] = [
                {int(k): None for k in part}
                for part in np.split(flat, bounds)
            ] if len(counts) else []
        return out


class SketchAggregator:
    """Streaming sketch aggregation over (bin, target) groups.

    One aggregator per worker absorbs that shard's flows; the
    coordinator folds worker states with :meth:`merge` (order-
    independent) and calls :meth:`build_records` once on the merged
    state. ``merge`` may adopt the other aggregator's buffers by
    reference — do not reuse an aggregator after merging it into
    another one.
    """

    def __init__(
        self,
        params: Optional[SketchParams] = None,
        bin_seconds: int = BIN_SECONDS,
    ):
        self.params = params if params is not None else SketchParams()
        self.bin_seconds = int(bin_seconds)
        self._bins: dict[int, _BinSketch] = {}

    # -- ingest ---------------------------------------------------------
    def absorb(self, flows: FlowDataset) -> "SketchAggregator":
        """Absorb a (possibly multi-bin) flow batch into the sketches.

        (Named ``absorb`` rather than ``ingest`` so the RS2xx race
        detector's name-based call-graph fallback does not conflate the
        worker counting path with the coordinator engines' ``ingest``.)
        """
        if len(flows) == 0:
            return self
        with obs.span(metric_names.SPAN_SKETCH_INGEST):
            bins = flows.time_bin(self.bin_seconds)
            for b in np.unique(bins).tolist():
                mask = bins == b
                sketch = self._bins.get(b)
                if sketch is None:
                    sketch = self._bins[b] = _BinSketch(self.params)
                cats = {
                    "src_ip": flows.src_ip[mask].astype(np.int64),
                    "src_port": flows.src_port[mask].astype(np.int64),
                    "dst_port": flows.dst_port[mask].astype(np.int64),
                    "src_mac": flows.src_mac[mask].astype(np.int64),
                    "protocol": flows.protocol[mask].astype(np.int64),
                }
                sketch.absorb(
                    dst=flows.dst_ip[mask].astype(np.uint64),
                    src=flows.src_ip[mask].astype(np.uint64),
                    cats=cats,
                    f_bytes=flows.bytes[mask].astype(np.float64),
                    f_packets=flows.packets[mask].astype(np.float64),
                    blackhole=flows.blackhole[mask],
                )
            obs.counter(metric_names.C_SKETCH_FLOWS_ABSORBED).inc(len(flows))
            obs.gauge(metric_names.G_SKETCH_MEMORY_BYTES).set(self.memory_bytes())
        return self

    # -- merge ----------------------------------------------------------
    def merge(self, other: "SketchAggregator") -> "SketchAggregator":
        """Fold another aggregator's state in (bitwise deterministic)."""
        if self.params != other.params or self.bin_seconds != other.bin_seconds:
            raise ValueError("cannot merge aggregators with different parameters")
        with obs.span(metric_names.SPAN_SKETCH_MERGE):
            for b in sorted(other._bins):
                mine = self._bins.get(b)
                if mine is None:
                    self._bins[b] = other._bins[b]
                else:
                    mine.merge(other._bins[b])
            obs.counter(metric_names.C_SKETCH_MERGES).inc()
            obs.gauge(metric_names.G_SKETCH_MEMORY_BYTES).set(self.memory_bytes())
        return self

    # -- queries --------------------------------------------------------
    def bins(self) -> list[int]:
        return sorted(self._bins)

    def total_flows(self, b: int) -> int:
        """Exact number of flows absorbed into one bin."""
        sketch = self._bins.get(b)
        return 0 if sketch is None else sketch.flows.total

    def target_cardinality(self, b: int, targets: np.ndarray) -> np.ndarray:
        """Estimated distinct source IPs per target in one bin."""
        sketch = self._bins.get(b)
        if sketch is None:
            return np.zeros(np.asarray(targets).shape, dtype=np.float64)
        return sketch.cardinality.query(np.asarray(targets, dtype=np.uint64))

    def memory_bytes(self) -> int:
        """Payload bytes of all per-bin sketch state."""
        return sum(s.memory_bytes() for s in self._bins.values())

    def error_bound(self) -> float:
        """Worst per-bin additive flow-count bound (``epsilon * N``)."""
        if not self._bins:
            return 0.0
        return max(s.flows.error_bound() for s in self._bins.values())

    # -- record building -------------------------------------------------
    def _empty_records(self) -> AggregatedDataset:
        return AggregatedDataset(
            bins=np.zeros(0, dtype=np.int64),
            targets=np.zeros(0, dtype=np.uint32),
            labels=np.zeros(0, dtype=bool),
            categorical={
                name: np.zeros(0, dtype=np.int64) for name in schema.key_columns()
            },
            metrics={
                name: np.zeros(0, dtype=np.float64) for name in schema.value_columns()
            },
            n_flows=np.zeros(0, dtype=np.int64),
        )

    def _build_bin(self, b: int, min_flows: int) -> Optional[AggregatedDataset]:
        sketch = self._bins[b]
        if not sketch._slots:
            return None
        targets = np.fromiter(
            sketch._slots, dtype=np.uint64, count=len(sketch._slots)
        )
        slots = np.arange(targets.shape[0])
        est_flows = sketch.flows.query(targets)
        keep = est_flows >= min_flows
        targets, slots, est_flows = targets[keep], slots[keep], est_flows[keep]
        if targets.shape[0] == 0:
            return None
        cap = self.params.hh_capacity
        if targets.shape[0] > cap:
            # Merged candidate unions can exceed the per-shard cap;
            # deterministically keep the heaviest (count desc, target
            # asc — the same total order the exact ranker uses).
            top = np.lexsort((targets, -est_flows))[:cap]
            targets, slots, est_flows = targets[top], slots[top], est_flows[top]
        order = np.argsort(targets, kind="stable")
        targets, slots, est_flows = targets[order], slots[order], est_flows[order]

        n = targets.shape[0]
        categorical = {
            name: np.full(n, schema.MISSING_KEY, dtype=np.int64)
            for name in schema.key_columns()
        }
        metrics = {
            name: np.full(n, np.nan, dtype=np.float64)
            for name in schema.value_columns()
        }
        r = schema.RANKS
        for cat in schema.CATEGORICALS:
            per_slot = sketch._keys[cat]
            pair_bytes = sketch.pair_bytes[cat]
            pair_packets = sketch.pair_packets[cat]
            for i in range(n):
                candidates = per_slot[slots[i]]
                if not candidates:
                    continue
                cand = np.fromiter(candidates, dtype=np.int64, count=len(candidates))
                codes = sketch._pair_codes(
                    np.full(cand.shape, targets[i], dtype=np.uint64), cat, cand
                )
                key_bytes = pair_bytes.query(codes).astype(np.float64)
                key_packets = pair_packets.query(codes).astype(np.float64)
                with np.errstate(divide="ignore", invalid="ignore"):
                    key_size = np.where(key_packets > 0, key_bytes / key_packets, 0.0)
                values = {
                    "bytes": key_bytes,
                    "packets": key_packets,
                    "packet_size": key_size,
                }
                for metric in schema.METRICS:
                    vals = values[metric]
                    # Metric descending, ties by descending key — the
                    # exact ranker's order (reversed stable argsort).
                    top_keys = np.lexsort((cand, vals))[::-1][:r]
                    for rank, j in enumerate(top_keys):
                        categorical[schema.key_column(cat, metric, rank)][i] = cand[j]
                        metrics[schema.value_column(cat, metric, rank)][i] = vals[j]

        labels = np.zeros(n, dtype=bool)
        for i in range(n):
            labels[i] = sketch._blackhole[slots[i]]
        return AggregatedDataset(
            bins=np.full(n, b, dtype=np.int64),
            targets=targets.astype(np.uint32),
            labels=labels,
            categorical=categorical,
            metrics=metrics,
            n_flows=est_flows.astype(np.int64),
        )

    def build_records(self, min_flows: int = 1) -> AggregatedDataset:
        """Build per-(bin, target) records from the merged sketches.

        Records cover the tracked (candidate) targets with estimated
        flow count ``>= min_flows``, ordered by (bin, target) — the
        reducer's emission order. Rank features re-query the pair
        sketches, so estimates inherit the documented ε/δ contract.
        ``rule_tags`` are not carried in sketch mode (rule matching
        needs exact flows).
        """
        with obs.span(metric_names.SPAN_SKETCH_BUILD):
            parts = []
            for b in sorted(self._bins):
                part = self._build_bin(b, min_flows)
                if part is not None and len(part) > 0:
                    parts.append(part)
            data = (
                AggregatedDataset.concat(parts) if parts else self._empty_records()
            )
            obs.counter(metric_names.C_SKETCH_RECORDS_BUILT).inc(len(data))
            obs.gauge(metric_names.G_SKETCH_ERROR_BOUND).set(self.error_bound())
            obs.gauge(metric_names.G_SKETCH_MEMORY_BYTES).set(self.memory_bytes())
        return data

    # -- state ----------------------------------------------------------
    def to_state(self) -> dict:
        """Picklable plain-array state (what workers ship back)."""
        return {
            "params": self.params,
            "bin_seconds": self.bin_seconds,
            "bins": {b: self._bins[b].to_state() for b in sorted(self._bins)},
        }

    @classmethod
    def from_state(cls, state: dict) -> "SketchAggregator":
        out = cls(state["params"], bin_seconds=state["bin_seconds"])
        for b, bin_state in state["bins"].items():
            out._bins[int(b)] = _BinSketch.from_state(out.params, bin_state)
        return out


def sketch_aggregate(
    flows: FlowDataset,
    params: Optional[SketchParams] = None,
    bin_seconds: int = BIN_SECONDS,
    min_flows: int = 1,
) -> AggregatedDataset:
    """One-shot sketch aggregation (ingest + build) of a flow batch."""
    return SketchAggregator(params, bin_seconds=bin_seconds).absorb(flows).build_records(
        min_flows=min_flows
    )
