"""Fault-tolerant shard execution (``repro.core.resilience``).

The supervision layer that turns the sharded engine of
:mod:`repro.core.parallel` from a benchmark artifact into an operable
subsystem: an always-on detector at an IXP must survive worker crashes,
hangs and corrupted pipes without dropping (or changing!) a single
verdict. See ``docs/ARCHITECTURE.md`` §5.5 for the failure model and
``docs/TESTING.md`` for the fault-injection how-to.

* :class:`SupervisedProcessBackend` — per-request deadlines, automatic
  worker restart with model re-broadcast, bounded batch retry,
  poison-batch quarantine, and graceful degradation to serial
  execution after a restart budget is exhausted;
* :class:`FaultPlan` / :class:`FaultSpec` — deterministic, seeded fault
  injection (crash-on-nth-batch, hang, slow shard, pipe corruption),
  parseable from the ``REPRO_FAULTS`` environment variable;
* :class:`ShardFailure` — the typed error the *unsupervised*
  :class:`~repro.core.parallel.backends.ProcessBackend` raises when it
  detects a dead worker (re-exported here; the supervised backend
  recovers from the same conditions instead).
"""

from repro.core.parallel.backends import ShardFailure
from repro.core.resilience.faults import (
    DISK_FAULT_KINDS,
    FAULT_KINDS,
    FAULTS_ENV,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.core.resilience.supervisor import SupervisedProcessBackend

__all__ = [
    "DISK_FAULT_KINDS",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "WORKER_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "ShardFailure",
    "SupervisedProcessBackend",
]
