"""Serialisation of flow datasets.

Two formats are supported:

* ``.npz`` — compressed numpy archive, the native fast path used by the
  experiment corpus cache.
* ``.csv`` — plain-text interchange for inspection and external tooling.

Neither format carries payload data; per the paper's ethics discussion
(§4.3) only sampled L2-L4 headers and counters are stored.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.netflow.dataset import SCHEMA, FlowDataset

_CSV_FIELDS = list(SCHEMA)


def save_npz(dataset: FlowDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **dataset.to_columns())


def load_npz(path: str | Path) -> FlowDataset:
    """Load a dataset previously written by :func:`save_npz`."""
    with np.load(Path(path)) as archive:
        columns = {name: archive[name] for name in SCHEMA}
    return FlowDataset(columns)


def save_csv(dataset: FlowDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` as CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = dataset.to_columns()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for i in range(len(dataset)):
            writer.writerow([int(columns[name][i]) for name in _CSV_FIELDS])


def load_csv(path: str | Path) -> FlowDataset:
    """Load a dataset previously written by :func:`save_csv`."""
    columns: dict[str, list[int]] = {name: [] for name in _CSV_FIELDS}
    with open(Path(path), newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != _CSV_FIELDS:
            raise ValueError(
                f"unexpected CSV header {reader.fieldnames}, expected {_CSV_FIELDS}"
            )
        for row in reader:
            for name in _CSV_FIELDS:
                columns[name].append(int(row[name]))
    return FlowDataset(
        {name: np.asarray(values, dtype=SCHEMA[name]) for name, values in columns.items()}
    )
