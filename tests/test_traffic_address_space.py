"""Tests for synthetic address-space allocation."""

import numpy as np
import pytest

from repro.traffic.address_space import (
    CLIENTS,
    REFLECTORS,
    SERVERS,
    SPOOFED,
    VICTIMS,
    AddressBlock,
    region_reflector_block,
    scatter_address,
    unscatter_address,
)


class TestAddressBlock:
    def test_sample_within_block(self, rng):
        block = AddressBlock(1000, 100)
        samples = block.sample(rng, 500)
        assert ((samples >= 1000) & (samples < 1100)).all()

    def test_sample_without_replacement_unique(self, rng):
        block = AddressBlock(1000, 100)
        samples = block.sample(rng, 100, replace=False)
        assert len(np.unique(samples)) == 100

    def test_sample_without_replacement_overflow(self, rng):
        with pytest.raises(ValueError):
            AddressBlock(0, 10).sample(rng, 11, replace=False)

    def test_contains(self):
        block = AddressBlock(1000, 100)
        assert block.contains(1000) and block.contains(1099)
        assert not block.contains(999) and not block.contains(1100)

    def test_contains_batch(self):
        block = AddressBlock(1000, 100)
        result = block.contains_batch(np.array([999, 1000, 1099, 1100]))
        np.testing.assert_array_equal(result, [False, True, True, False])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AddressBlock(0, 0)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            AddressBlock(2**32 - 1, 2)


class TestScattering:
    def test_scatter_is_bijective(self):
        values = np.arange(0, 2**20, 977, dtype=np.uint32)
        roundtrip = unscatter_address(scatter_address(values))
        np.testing.assert_array_equal(roundtrip, values)

    def test_scalar_roundtrip(self):
        assert unscatter_address(scatter_address(12345)) == 12345

    def test_scattered_block_membership(self, rng):
        block = AddressBlock(1000, 100, scattered=True)
        samples = block.sample(rng, 200)
        assert block.contains_batch(samples).all()
        assert all(block.contains(int(s)) for s in samples[:10])

    def test_scattered_blocks_stay_disjoint(self, rng):
        a = AddressBlock(0, 1000, scattered=True)
        b = AddressBlock(1000, 1000, scattered=True)
        samples_a = a.sample(rng, 500)
        assert not b.contains_batch(samples_a).any()

    def test_scattered_addresses_not_contiguous(self, rng):
        """The point of scattering: role is not an address interval."""
        block = AddressBlock(1000, 10000, scattered=True)
        samples = np.sort(block.sample(rng, 500).astype(np.uint64))
        span = int(samples[-1] - samples[0])
        assert span > 2**30  # spread across the IPv4 space

    def test_source_blocks_scattered_victims_not(self):
        assert not VICTIMS.scattered
        for block in (SERVERS, CLIENTS, REFLECTORS, SPOOFED):
            assert block.scattered


class TestAllocationPlan:
    def test_blocks_disjoint(self):
        blocks = [VICTIMS, SERVERS, CLIENTS, REFLECTORS, SPOOFED]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert a.base + a.size <= b.base or b.base + b.size <= a.base

    def test_region_blocks_partition_reflectors(self):
        regions = [region_reflector_block(i) for i in range(16)]
        assert regions[0].base == REFLECTORS.base
        for a, b in zip(regions, regions[1:]):
            assert a.base + a.size == b.base
        last = regions[-1]
        assert last.base + last.size == REFLECTORS.base + REFLECTORS.size

    def test_region_out_of_range(self):
        with pytest.raises(ValueError):
            region_reflector_block(16)
