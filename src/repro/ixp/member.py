"""IXP member networks.

Members are the ASes connected to the exchange fabric. Their relevant
properties for this reproduction: the MAC address of their fabric port
(visible in sampled flows, used as a WoE-encoded feature), their role
(which shapes the traffic they inject), and whether they adhere to
blackholing announcements. Non-adhering members are the reason
blackholed traffic remains visible at the IXP at all (paper §3, Fig. 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemberRole(enum.Enum):
    """Coarse role of a member network in the traffic ecosystem."""

    EYEBALL = "eyeball"  # access networks; mostly receive traffic
    CONTENT = "content"  # CDNs, hosters; mostly send benign traffic
    TRANSIT = "transit"  # carry mixed traffic, incl. reflection paths


@dataclass(frozen=True)
class MemberAS:
    """One AS connected to the IXP."""

    asn: int
    mac: int
    role: MemberRole
    #: Whether this member's routers install received blackhole routes.
    adheres_to_blackholing: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError("ASN must be positive")
        if not 0 <= self.mac <= 0xFFFFFFFFFFFF:
            raise ValueError("MAC out of range")

    def display_name(self) -> str:
        """Name for logs/UIs, falling back to the ASN."""
        return self.name or f"AS{self.asn}"
