"""The one sanctioned way to write recovery-critical files.

Crash safety rests on a single idiom, applied everywhere a snapshot,
manifest, or model file hits disk:

1. write the full payload to a deterministic sibling temp file,
2. ``fsync`` the file descriptor (data reaches the device, not just
   the page cache),
3. ``os.replace`` it over the destination (atomic on POSIX — readers
   see either the old file or the new one, never a prefix),
4. ``fsync`` the containing directory (the rename itself is durable).

A crash at any point leaves either the previous version or the new one;
a torn write can only ever affect the temp file, which the next
successful write simply overwrites. The RS501/RS502 durability lint
(``docs/ANALYSIS.md``) flags any write to recovery/persistence paths
that bypasses this module.

Fault injection: :func:`durable_write` accepts an optional ``fault``
kind so the checkpoint store can simulate torn writes and full disks
deterministically (see :mod:`repro.core.resilience.faults`) — the
simulated failure goes through the same code path a real one would.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import Optional

from repro.core.recovery.errors import CheckpointWriteError

__all__ = ["durable_write", "fsync_dir"]


def fsync_dir(directory: Path) -> None:
    """Flush a directory entry table to the device (POSIX best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs here
        pass
    finally:
        os.close(fd)


def durable_write(path: Path, data: bytes, fault: Optional[str] = None) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    ``fault`` injects a deterministic disk failure:

    * ``"torn-write"`` — only the first half of ``data`` reaches the
      file before the rename, simulating a write torn by power loss
      that the rename nevertheless made visible. Detection is the
      *reader's* job (sha256 manifests), which is exactly what the
      chaos suite asserts.
    * ``"enospc"`` — the write fails with ``ENOSPC`` before any byte is
      durable; raised as :class:`CheckpointWriteError` with the
      destination untouched.

    Raises :class:`CheckpointWriteError` on any OS-level failure; the
    temp file is removed on the way out so a failed write leaves no
    debris.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    payload = data
    if fault == "torn-write":
        payload = data[: len(data) // 2]
    try:
        if fault == "enospc":
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(path))
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointWriteError(f"durable write of {path} failed: {exc}") from exc
    fsync_dir(path.parent)
