"""Lint configuration: the project contracts the passes enforce.

:func:`default_config` encodes **this repository's** contracts — the
layer DAG from ``docs/ARCHITECTURE.md``, the shard-worker entry points
from ``core/parallel``/``core/resilience``, the obs name catalogue and
its documentation page. Tests build custom configs over fixture trees,
so every pass stays reusable against any source root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

__all__ = ["LintConfig", "default_config", "REPO_ROOT", "DEFAULT_LAYERS"]

#: The repository root, derived from this file's location under
#: ``src/repro/analysis/`` (parents: analysis, repro, src, root).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: The ARCHITECTURE.md import DAG: each top-level subpackage of
#: ``repro`` maps to the set of sibling subpackages it may import at
#: runtime. ``repro.obs`` (and the analyzer itself) sit at the bottom:
#: stdlib/numpy only. A subpackage missing from this table fails the
#: layering pass until the contract (here + ARCHITECTURE.md) names it.
DEFAULT_LAYERS: Mapping[str, frozenset[str]] = {
    "obs": frozenset(),
    "analysis": frozenset(),
    "netflow": frozenset({"obs"}),
    "bgp": frozenset({"netflow", "obs"}),
    "traffic": frozenset({"netflow", "bgp", "obs"}),
    "ixp": frozenset({"netflow", "bgp", "traffic", "obs"}),
    "core": frozenset({"netflow", "bgp", "traffic", "obs"}),
    "experiments": frozenset(
        {"core", "ixp", "netflow", "bgp", "traffic", "obs"}
    ),
    "scenarios": frozenset({"core", "netflow", "bgp", "traffic", "obs"}),
    "cli": frozenset(
        {"core", "experiments", "ixp", "netflow", "bgp", "traffic", "obs",
         "analysis", "scenarios"}
    ),
}


@dataclass(frozen=True)
class LintConfig:
    """Everything the passes need to know about one project."""

    #: Directory containing the top-level package(s) (the repo's src/).
    src_root: Path
    #: The top-level package the contracts speak about.
    package: str = "repro"
    #: Paths in findings are rendered relative to this directory.
    rel_to: Optional[Path] = None
    #: Layer DAG: subpackage -> allowed sibling subpackages.
    layers: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: External top-level imports allowed anywhere in the package.
    external_allow: frozenset[str] = frozenset({"numpy", "scipy"})
    #: Module prefixes where wall-clock reads are legitimate (the obs
    #: layer owns the injectable clock).
    clock_exempt: tuple[str, ...] = ("repro.obs",)
    #: Module prefixes where set-iteration order matters (RS103 scope):
    #: layers whose outputs feed serialization, hashing, or verdicts.
    set_iter_scopes: tuple[str, ...] = (
        "repro.core", "repro.netflow", "repro.scenarios"
    )
    #: Qualified names of the functions that run inside shard workers;
    #: the race detector's call-graph roots.
    worker_entry_points: tuple[str, ...] = (
        "repro.core.parallel.backends._worker_main",
        "repro.core.parallel.backends._execute_fault",
    )
    #: Module prefixes allowed to write raw shared-memory segment bytes
    #: (RS204 scope): the ring/model-plane protocol implementation owns
    #: every frame and control-block layout; a ``.buf`` write anywhere
    #: else bypasses the seqno/generation/crc discipline documented in
    #: ``docs/IPC.md``.
    shm_protocol_modules: tuple[str, ...] = ("repro.core.parallel.shm",)
    #: The obs name catalogue module and the page documenting it.
    names_module: str = "repro.obs.names"
    metrics_doc: Optional[Path] = None
    #: Module prefixes exempt from the obs-names emission scan (the obs
    #: layer handles caller-supplied names, it never emits its own).
    obs_exempt: tuple[str, ...] = ("repro.obs",)
    #: Module prefixes whose files must survive a crash (RS501/RS502
    #: scope): everything they write must go through the sanctioned
    #: durable-write idiom.
    durable_modules: tuple[str, ...] = (
        "repro.core.recovery", "repro.core.persistence"
    )
    #: The sanctioned writer modules, exempt from RS501/RS502: the
    #: temp+fsync+rename implementation itself, and the append-only
    #: journal with its own fsync-per-append discipline.
    durable_writers: tuple[str, ...] = (
        "repro.core.recovery.durable",
        "repro.core.recovery.journal",
    )
    #: Default baseline file.
    baseline_path: Optional[Path] = None


def default_config(root: Optional[Path] = None) -> LintConfig:
    """The configuration for this repository."""
    root = (root or REPO_ROOT).resolve()
    return LintConfig(
        src_root=root / "src",
        rel_to=root,
        metrics_doc=root / "docs" / "METRICS.md",
        baseline_path=root / "lint-baseline.json",
    )
