"""E-F12: geographic model drift (Fig. 12).

Paper shape: the diagonal (train = test site) and the merged-ALL row are
strong; naive full-model transfer degrades off-diagonal; reflector
overlap between sites is very low; classifier-only transfer with local
WoE recovers near-diagonal performance for the major sites (the paper
excepts transfers between the very small IXPs).
"""

import numpy as np

from repro.experiments import fig12_geographic


def test_fig12_geographic(run_experiment):
    result = run_experiment(fig12_geographic)
    print()
    print(result.summary())

    # Strong diagonal.
    assert result.notes["full_diag_mean"] > 0.95

    # The merged ALL model is strong at every site (Fig. 12 top row).
    all_row = [
        r["fbeta"]
        for r in result.rows
        if r["analysis"] == "full-transfer" and r["train"] == "ALL"
        and not np.isnan(r["fbeta"])
    ]
    assert all_row and min(all_row) > 0.9

    # Naive transfer degrades relative to the diagonal.
    assert result.notes["full_offdiag_major_mean"] < result.notes["full_diag_mean"]

    # Reflector knowledge is local: very low overlap between sites.
    assert result.notes["reflector_overlap_offdiag_mean"] < 0.1

    # Classifier-only transfer with local WoE recovers performance for
    # the major sites (paper: > 0.98 in almost all cases).
    assert result.notes["local_offdiag_major_mean"] > 0.9
    assert (
        result.notes["local_offdiag_major_mean"]
        >= result.notes["full_offdiag_major_mean"]
    )
