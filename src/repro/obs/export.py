"""Exporters: JSON-lines sink and Prometheus-style text exposition.

Two pluggable output formats cover the operational spectrum:

* :class:`JsonLinesExporter` appends one self-contained snapshot object
  per line — the right shape for log shippers and offline analysis
  (``read_jsonl`` parses the file back for tests and tooling);
* :func:`prometheus_text` renders the classic ``# TYPE`` exposition so a
  scrape endpoint (or a ``textfile`` collector) can serve the registry
  to an existing monitoring stack without adding any dependency here.

:func:`format_snapshot` is the human-facing third sibling used by
``repro stats``: counters, gauges, histogram percentiles, and the
per-phase span table in fixed-width text.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Union

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry

__all__ = [
    "snapshot",
    "JsonLinesExporter",
    "read_jsonl",
    "prometheus_text",
    "format_snapshot",
]


def snapshot(registry: MetricRegistry) -> dict:
    """One JSON-serialisable dict of the registry's entire state."""
    counters, gauges, histograms = [], [], []
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            counters.append(metric.as_dict())
        elif isinstance(metric, Gauge):
            gauges.append(metric.as_dict())
        elif isinstance(metric, Histogram):
            histograms.append(metric.as_dict())
    spans = [agg.as_dict() for agg in registry.spans.stats().values()]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": spans,
    }


class JsonLinesExporter:
    """Append registry snapshots to a ``.jsonl`` file, one per call."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def export(self, registry: MetricRegistry, **extra: object) -> dict:
        """Write one snapshot line (plus ``extra`` top-level fields)."""
        record = dict(extra)
        record.update(snapshot(registry))
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record


def read_jsonl(path: Union[str, Path]) -> list[dict]:
    """Parse a JSON-lines snapshot file back into dicts."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    sanitized = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _escape_label(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def prometheus_text(registry: MetricRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.metrics():
        base = _prom_name(metric.name)
        if isinstance(metric, Counter):
            if base not in seen_types:
                lines.append(f"# TYPE {base}_total counter")
                seen_types.add(base)
            labels = _prom_labels(dict(metric.labels))
            lines.append(f"{base}_total{labels} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            if base not in seen_types:
                lines.append(f"# TYPE {base} gauge")
                seen_types.add(base)
            labels = _prom_labels(dict(metric.labels))
            lines.append(f"{base}{labels} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            if base not in seen_types:
                lines.append(f"# TYPE {base} histogram")
                seen_types.add(base)
            base_labels = dict(metric.labels)
            for edge, cumulative in metric.bucket_counts().items():
                le = _prom_labels(base_labels, {"le": _fmt(edge)})
                lines.append(f"{base}_bucket{le} {cumulative}")
            labels = _prom_labels(base_labels)
            lines.append(f"{base}_sum{labels} {_fmt(metric.sum)}")
            lines.append(f"{base}_count{labels} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable snapshot (the `repro stats` output)
# ----------------------------------------------------------------------
def _labels_suffix(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def format_snapshot(registry: MetricRegistry) -> str:
    """Fixed-width text rendering: counters, gauges, histograms, spans."""
    snap = snapshot(registry)
    lines: list[str] = []

    if snap["counters"]:
        lines.append("== counters ==")
        for c in snap["counters"]:
            name = c["name"] + _labels_suffix(c["labels"])
            lines.append(f"  {name:<42s} {c['value']:>14.0f}")
    if snap["gauges"]:
        lines.append("== gauges ==")
        for g in snap["gauges"]:
            name = g["name"] + _labels_suffix(g["labels"])
            lines.append(f"  {name:<42s} {g['value']:>14.2f}")

    span_names = {s["name"] for s in snap["spans"]}
    plain_hists = [h for h in snap["histograms"] if h["name"] not in span_names]
    if plain_hists:
        lines.append("== histograms ==")
        for h in plain_hists:
            name = h["name"] + _labels_suffix(h["labels"])
            lines.append(
                f"  {name:<42s} n={h['count']:<8d} "
                f"p50={h['p50']:.4g} p90={h['p90']:.4g} p99={h['p99']:.4g}"
            )

    if snap["spans"]:
        lines.append("== spans (per phase) ==")
        lines.append(
            f"  {'phase':<28s} {'count':>7s} {'total_s':>10s} "
            f"{'mean_s':>10s} {'p90_s':>10s} {'max_s':>10s}"
        )
        for s in snap["spans"]:
            hist = registry.get(s["name"])
            p90 = hist.percentile(90) if isinstance(hist, Histogram) and hist.count else float("nan")
            lines.append(
                f"  {s['name']:<28s} {s['count']:>7d} {s['total_seconds']:>10.3f} "
                f"{s['mean_seconds']:>10.4f} {p90:>10.4f} {s['max_seconds']:>10.4f}"
            )
    return "\n".join(lines)
