"""Golden-trace regression tests.

Replays the frozen workloads under ``tests/golden/`` through the
serial engine and the sharded engine (shards ∈ {1, 2, 4}; the 4-shard
variant uses the multiprocessing backend, so the golden path also
covers IPC round-trips) and compares every verdict against the stored
trace. Discrete fields (bin, target, label, matched rules) must match
exactly; scores may drift at most ``TOLERANCE`` (1e-9) to allow for
benign float-formatting differences, nothing more.

If these fail after a deliberate behaviour change, regenerate with::

    PYTHONPATH=src python tests/gen_golden.py

and commit the JSON diff with the change (see ``gen_golden.py``'s
docstring for the policy).
"""

from __future__ import annotations

import json

import pytest

from tests import gen_golden
from repro.core.parallel import ShardedStreamingScrubber
from repro.core.streaming import StreamingScrubber

TOLERANCE = 1e-9

ENGINES = {
    "serial": lambda: StreamingScrubber(**gen_golden.ENGINE_KWARGS),
    "shards1": lambda: ShardedStreamingScrubber(
        n_shards=1, backend="serial", **gen_golden.ENGINE_KWARGS
    ),
    "shards2": lambda: ShardedStreamingScrubber(
        n_shards=2, backend="serial", **gen_golden.ENGINE_KWARGS
    ),
    "shards4": lambda: ShardedStreamingScrubber(
        n_shards=4, backend="process", **gen_golden.ENGINE_KWARGS
    ),
}


@pytest.fixture(scope="module")
def scrubber():
    return gen_golden.build_scrubber()


def load_trace(seed: int) -> dict:
    path = gen_golden.trace_path(seed)
    assert path.is_file(), (
        f"missing golden fixture {path}; run "
        "`PYTHONPATH=src python tests/gen_golden.py`"
    )
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("engine_id", list(ENGINES), ids=list(ENGINES))
@pytest.mark.parametrize("seed", gen_golden.WORKLOAD_SEEDS)
def test_verdicts_match_golden_trace(seed, engine_id, scrubber):
    golden = load_trace(seed)
    engine = ENGINES[engine_id]().warm_start(scrubber)
    try:
        verdicts = gen_golden.drive(engine, gen_golden.build_workload(seed))
    finally:
        if hasattr(engine, "close"):
            engine.close()
    actual = gen_golden.verdicts_to_records(verdicts)
    expected = golden["verdicts"]
    assert len(actual) == golden["n_verdicts"] == len(expected), (
        f"{engine_id} w{seed}: {len(actual)} verdicts, "
        f"golden has {golden['n_verdicts']}"
    )
    for i, (got, want) in enumerate(zip(actual, expected)):
        for field in ("bin", "target_ip", "is_ddos", "matched_rules"):
            assert got[field] == want[field], (
                f"{engine_id} w{seed} verdict {i}: {field} drifted "
                f"({got[field]!r} != {want[field]!r})"
            )
        drift = abs(got["score"] - want["score"])
        assert drift <= TOLERANCE, (
            f"{engine_id} w{seed} verdict {i}: score drifted by {drift:.3e} "
            f"({got['score']!r} != {want['score']!r})"
        )


def test_fixtures_are_self_consistent():
    """Every stored trace is sorted by (bin, target) and non-trivial."""
    for seed in gen_golden.WORKLOAD_SEEDS:
        golden = load_trace(seed)
        assert golden["workload_seed"] == seed
        keys = [(v["bin"], v["target_ip"]) for v in golden["verdicts"]]
        assert keys == sorted(keys), f"w{seed}: trace not in emission order"
        assert len(keys) == len(set(keys)), f"w{seed}: duplicate verdict keys"
        assert any(v["is_ddos"] for v in golden["verdicts"]), (
            f"w{seed}: no positive verdicts — fixture too weak to catch drift"
        )
        assert any(not v["is_ddos"] for v in golden["verdicts"]), (
            f"w{seed}: no negative verdicts — fixture too weak to catch drift"
        )
