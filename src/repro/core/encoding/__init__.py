"""Feature encoding: WoE, numeric transformers, PCA, matrix assembly."""

from repro.core.encoding.matrix import FeatureMatrix, assemble, feature_columns
from repro.core.encoding.pca import PCA, explained_variance_curve
from repro.core.encoding.transforms import (
    FeatureReducer,
    Imputer,
    MinMaxNormalizer,
    Standardizer,
    Transformer,
)
from repro.core.encoding.woe import UNKNOWN_WOE, WoEEncoder, WoETable

__all__ = [
    "FeatureMatrix",
    "FeatureReducer",
    "Imputer",
    "MinMaxNormalizer",
    "PCA",
    "Standardizer",
    "Transformer",
    "UNKNOWN_WOE",
    "WoEEncoder",
    "WoETable",
    "assemble",
    "explained_variance_curve",
    "feature_columns",
]
