"""Tests for item encoding (flows -> ARM transactions)."""

import pytest

from repro.core.rules.items import (
    ItemEncoder,
    LABEL_BENIGN,
    LABEL_BLACKHOLE,
    OTHER,
    deduplicate,
    packet_size_bin_label,
    parse_packet_size_bin,
)
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


class TestPacketSizeBins:
    def test_bin_label(self):
        assert packet_size_bin_label(468.0) == "(400,500]"

    def test_boundary_is_inclusive_upper(self):
        assert packet_size_bin_label(500.0) == "(400,500]"
        assert packet_size_bin_label(500.1) == "(500,600]"

    def test_small_sizes(self):
        assert packet_size_bin_label(64.0) == "(0,100]"

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            packet_size_bin_label(0.0)

    def test_parse_roundtrip(self):
        assert parse_packet_size_bin("(400,500]") == (400, 500)

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            parse_packet_size_bin("[400,500)")


class TestItemEncoder:
    def test_fit_identifies_popular_ports(self):
        flows = FlowDataset.from_records(
            [make_flow(src_port=123, dst_port=9000 + i) for i in range(50)]
            + [make_flow(src_port=53, dst_port=80) for _ in range(50)]
        )
        encoder = ItemEncoder.fit(flows, top_k=5)
        assert 123 in encoder.src_ports and 53 in encoder.src_ports

    def test_rare_ports_become_other(self):
        flows = FlowDataset.from_records(
            [make_flow(src_port=123, dst_port=10000 + i) for i in range(100)]
        )
        encoder = ItemEncoder.fit(flows, top_k=3, min_share=0.05)
        transactions = encoder.encode(flows)
        dst_values = {dict(t)["port_dst"] for t in transactions}
        assert dst_values == {OTHER}

    def test_encode_structure(self, handmade_flows):
        encoder = ItemEncoder.fit(handmade_flows)
        transactions = encoder.encode(handmade_flows)
        assert len(transactions) == len(handmade_flows)
        attributes = [a for a, _ in transactions[0]]
        assert attributes == ["protocol", "port_src", "port_dst", "packet_size"]

    def test_encode_labeled_appends_class(self, handmade_flows):
        encoder = ItemEncoder.fit(handmade_flows)
        transactions = encoder.encode_labeled(handmade_flows)
        labels = [t[-1] for t in transactions]
        assert labels.count(LABEL_BLACKHOLE) == int(handmade_flows.blackhole.sum())
        assert labels.count(LABEL_BENIGN) == int((~handmade_flows.blackhole).sum())

    def test_empty_flows(self):
        encoder = ItemEncoder.fit(FlowDataset.empty())
        assert encoder.src_ports == frozenset()


class TestDeduplicate:
    def test_collapses_identical(self):
        t = (("protocol", 17), ("port_src", 123))
        weighted = deduplicate([t, t, t])
        assert len(weighted) == 1
        assert weighted[0][1] == 3

    def test_order_insensitive(self):
        a = (("protocol", 17), ("port_src", 123))
        b = (("port_src", 123), ("protocol", 17))
        weighted = deduplicate([a, b])
        assert len(weighted) == 1 and weighted[0][1] == 2

    def test_distinct_kept(self):
        a = (("protocol", 17),)
        b = (("protocol", 6),)
        assert len(deduplicate([a, b])) == 2
