"""Exporters: JSON-lines sink and Prometheus-style text exposition.

Two pluggable output formats cover the operational spectrum:

* :class:`JsonLinesExporter` appends one self-contained snapshot object
  per line — the right shape for log shippers and offline analysis
  (``read_jsonl`` parses the file back for tests and tooling);
* :func:`prometheus_text` renders the classic ``# TYPE`` exposition so a
  scrape endpoint (or a ``textfile`` collector) can serve the registry
  to an existing monitoring stack without adding any dependency here.

:func:`format_snapshot` is the human-facing third sibling used by
``repro stats``: counters, gauges, histogram percentiles, and the
per-phase span table in fixed-width text.

Both renderers also accept an already-taken snapshot *dict* in place of
a registry, and :func:`merge_snapshots` folds several snapshots into one
— the reduction the sharded streaming engine uses to present its
coordinator plus N worker-shard registries as a single operator view.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry

__all__ = [
    "snapshot",
    "merge_snapshots",
    "JsonLinesExporter",
    "read_jsonl",
    "prometheus_text",
    "format_snapshot",
]

#: Either a live registry or a dict previously produced by :func:`snapshot`.
SnapshotSource = Union[MetricRegistry, dict]


def snapshot(registry: MetricRegistry) -> dict:
    """One JSON-serialisable dict of the registry's entire state."""
    counters, gauges, histograms = [], [], []
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            counters.append(metric.as_dict())
        elif isinstance(metric, Gauge):
            gauges.append(metric.as_dict())
        elif isinstance(metric, Histogram):
            histograms.append(metric.as_dict())
    spans = [agg.as_dict() for agg in registry.spans.stats().values()]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": spans,
    }


def _as_snapshot(source: SnapshotSource) -> dict:
    return source if isinstance(source, dict) else snapshot(source)


def _entry_key(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))


def _bucket_percentile(
    buckets: dict[str, int], count: int, lo: float, hi: float, q: float
) -> float:
    """Percentile from a snapshot's cumulative bucket dict.

    Mirrors :meth:`Histogram.percentile` (linear interpolation inside
    the covering bucket, clamped to the observed min/max) so merged
    snapshots report percentiles the same way live registries do.
    """
    edges = sorted(float(k) for k in buckets)
    rank = (q / 100.0) * count
    running = 0.0
    prev_cumulative = 0
    prev_edge = 0.0 if edges and edges[0] > 0 else (edges[0] if edges else 0.0)
    for edge in edges:
        if edge == math.inf:
            continue
        c = buckets[str(edge)] - prev_cumulative
        prev_cumulative = buckets[str(edge)]
        if c:
            if running + c >= rank:
                frac = (rank - running) / c
                est = prev_edge + frac * (edge - prev_edge)
                return float(min(max(est, lo), hi))
            running += c
        prev_edge = edge
    return float(hi)


def _min_opt(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _max_opt(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def merge_snapshots(sources: Sequence[SnapshotSource]) -> dict:
    """Fold several snapshots (or registries) into one snapshot dict.

    Counters and gauges with the same (name, labels) sum; histograms
    merge bucket-wise (same bucket layout assumed — all pipeline
    histograms use the default edges) with percentiles re-estimated from
    the merged buckets; span aggregates sum counts/totals and combine
    extrema. This is how per-shard registries roll up into the single
    operator snapshot of ``repro stream``.
    """
    counters: dict[tuple, dict] = {}
    gauges: dict[tuple, dict] = {}
    histograms: dict[tuple, dict] = {}
    spans: dict[str, dict] = {}
    for source in sources:
        snap = _as_snapshot(source)
        for c in snap.get("counters", ()):
            key = _entry_key(c)
            if key in counters:
                counters[key]["value"] += c["value"]
            else:
                counters[key] = dict(c)
        for g in snap.get("gauges", ()):
            key = _entry_key(g)
            if key in gauges:
                gauges[key]["value"] += g["value"]
            else:
                gauges[key] = dict(g)
        for h in snap.get("histograms", ()):
            key = _entry_key(h)
            if key in histograms:
                merged = histograms[key]
                merged["count"] += h["count"]
                merged["sum"] += h["sum"]
                merged["min"] = _min_opt(merged["min"], h["min"])
                merged["max"] = _max_opt(merged["max"], h["max"])
                buckets = dict(merged["buckets"])
                for edge, cumulative in h["buckets"].items():
                    buckets[edge] = buckets.get(edge, 0) + cumulative
                merged["buckets"] = buckets
            else:
                histograms[key] = {**h, "buckets": dict(h["buckets"])}
        for s in snap.get("spans", ()):
            name = s["name"]
            if name in spans:
                merged = spans[name]
                merged["count"] += s["count"]
                merged["total_seconds"] += s["total_seconds"]
                merged["min_seconds"] = _min_opt(
                    merged["min_seconds"], s["min_seconds"]
                )
                merged["max_seconds"] = _max_opt(
                    merged["max_seconds"], s["max_seconds"]
                )
                for parent, n in s["parents"].items():
                    merged["parents"][parent] = merged["parents"].get(parent, 0) + n
            else:
                spans[name] = {**s, "parents": dict(s["parents"])}
    for h in histograms.values():
        if h["count"]:
            for q in (50, 90, 99):
                h[f"p{q}"] = _bucket_percentile(
                    h["buckets"], h["count"], h["min"], h["max"], q
                )
        else:
            h["p50"] = h["p90"] = h["p99"] = None
    for s in spans.values():
        s["mean_seconds"] = (
            s["total_seconds"] / s["count"] if s["count"] else None
        )
    return {
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [histograms[k] for k in sorted(histograms)],
        "spans": sorted(
            spans.values(), key=lambda s: (-s["total_seconds"], s["name"])
        ),
    }


class JsonLinesExporter:
    """Append registry snapshots to a ``.jsonl`` file, one per call."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def export(self, registry: MetricRegistry, **extra: object) -> dict:
        """Write one snapshot line (plus ``extra`` top-level fields)."""
        record = dict(extra)
        record.update(snapshot(registry))
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record


def read_jsonl(path: Union[str, Path]) -> list[dict]:
    """Parse a JSON-lines snapshot file back into dicts."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    sanitized = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _escape_label(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def prometheus_text(source: SnapshotSource) -> str:
    """Render a registry or snapshot dict in Prometheus text format."""
    snap = _as_snapshot(source)
    entries: list[tuple[tuple, str, dict]] = []
    for kind in ("counters", "gauges", "histograms"):
        for entry in snap[kind]:
            entries.append((_entry_key(entry), kind, entry))
    lines: list[str] = []
    seen_types: set[str] = set()
    for _, kind, entry in sorted(entries, key=lambda item: item[0]):
        base = _prom_name(entry["name"])
        labels = _prom_labels(entry["labels"])
        if kind == "counters":
            if base not in seen_types:
                lines.append(f"# TYPE {base}_total counter")
                seen_types.add(base)
            lines.append(f"{base}_total{labels} {_fmt(entry['value'])}")
        elif kind == "gauges":
            if base not in seen_types:
                lines.append(f"# TYPE {base} gauge")
                seen_types.add(base)
            lines.append(f"{base}{labels} {_fmt(entry['value'])}")
        else:
            if base not in seen_types:
                lines.append(f"# TYPE {base} histogram")
                seen_types.add(base)
            for edge in sorted(float(k) for k in entry["buckets"]):
                le = _prom_labels(entry["labels"], {"le": _fmt(edge)})
                cumulative = entry["buckets"][str(edge)]
                lines.append(f"{base}_bucket{le} {cumulative}")
            lines.append(f"{base}_sum{labels} {_fmt(entry['sum'])}")
            lines.append(f"{base}_count{labels} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable snapshot (the `repro stats` output)
# ----------------------------------------------------------------------
def _labels_suffix(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def format_snapshot(source: SnapshotSource) -> str:
    """Fixed-width text rendering: counters, gauges, histograms, spans."""
    snap = _as_snapshot(source)
    lines: list[str] = []

    if snap["counters"]:
        lines.append("== counters ==")
        for c in snap["counters"]:
            name = c["name"] + _labels_suffix(c["labels"])
            lines.append(f"  {name:<42s} {c['value']:>14.0f}")
    if snap["gauges"]:
        lines.append("== gauges ==")
        for g in snap["gauges"]:
            name = g["name"] + _labels_suffix(g["labels"])
            lines.append(f"  {name:<42s} {g['value']:>14.2f}")

    span_names = {s["name"] for s in snap["spans"]}
    plain_hists = [h for h in snap["histograms"] if h["name"] not in span_names]
    if plain_hists:
        lines.append("== histograms ==")
        for h in plain_hists:
            name = h["name"] + _labels_suffix(h["labels"])
            lines.append(
                f"  {name:<42s} n={h['count']:<8d} "
                f"p50={h['p50']:.4g} p90={h['p90']:.4g} p99={h['p99']:.4g}"
            )

    if snap["spans"]:
        lines.append("== spans (per phase) ==")
        lines.append(
            f"  {'phase':<28s} {'count':>7s} {'total_s':>10s} "
            f"{'mean_s':>10s} {'p90_s':>10s} {'max_s':>10s}"
        )
        hist_by_name = {h["name"]: h for h in snap["histograms"]}
        for s in snap["spans"]:
            hist = hist_by_name.get(s["name"])
            p90 = (
                hist["p90"]
                if hist is not None and hist.get("p90") is not None
                else float("nan")
            )
            lines.append(
                f"  {s['name']:<28s} {s['count']:>7d} {s['total_seconds']:>10.3f} "
                f"{s['mean_seconds']:>10.4f} {p90:>10.4f} {s['max_seconds']:>10.4f}"
            )
    return "\n".join(lines)
