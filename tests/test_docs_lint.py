"""Docs lint: keep the markdown documentation in sync with the code.

Two contracts are enforced:

1. Every *relative* markdown link in README.md, DESIGN.md, and
   ``docs/*.md`` points at a file that exists (external ``http(s)://``
   and ``mailto:`` links are out of scope — no network in tests).
2. Every metric/span name the code can emit is documented in
   ``docs/METRICS.md``: the full catalogue in ``repro.obs.names`` plus
   any string literal passed directly to a ``counter(``/``gauge(``/
   ``histogram(``/``span(`` call inside ``src/repro`` (which also means
   new instrumentation bypassing the catalogue gets flagged here and is
   pushed toward ``names.py``).
"""

import re
from pathlib import Path

import pytest

from repro.obs import names

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
SRC_DIR = REPO_ROOT / "src" / "repro"
METRICS_DOC = DOCS_DIR / "METRICS.md"

LINT_TARGETS = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list(DOCS_DIR.glob("*.md"))
)

#: ``[text](target)`` — target captured up to the closing paren.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A string literal handed straight to an instrument factory or span().
_INSTRUMENT_LITERAL = re.compile(
    r"""\b(?:counter|gauge|histogram|span)\(\s*['"]([^'"]+)['"]"""
)
_EXTERNAL = ("http://", "https://", "mailto:")


def _relative_links(path):
    for match in _MD_LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        yield target


def test_lint_targets_exist():
    assert METRICS_DOC.is_file()
    assert len(LINT_TARGETS) >= 4  # README, DESIGN, ARCHITECTURE, METRICS


@pytest.mark.parametrize(
    "doc", LINT_TARGETS, ids=[p.name for p in LINT_TARGETS]
)
def test_relative_markdown_links_resolve(doc):
    broken = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name} has broken relative links: {broken}"


def _emitted_names():
    """Every metric/span name the code can emit."""
    emitted = set(names.ALL_NAMES)
    for source in sorted(SRC_DIR.rglob("*.py")):
        if SRC_DIR / "obs" in source.parents:
            continue  # the obs layer itself only handles caller names
        emitted.update(_INSTRUMENT_LITERAL.findall(source.read_text()))
    return emitted


def test_name_catalogue_is_nontrivial():
    # Guard: if the catalogue import path breaks, the docs test below
    # would vacuously pass on an empty set.
    assert len(names.ALL_COUNTERS) >= 15
    assert len(names.ALL_GAUGES) >= 4
    assert len(names.ALL_SPANS) >= 15


def test_every_emitted_metric_is_documented():
    doc_text = METRICS_DOC.read_text(encoding="utf-8")
    undocumented = sorted(
        name for name in _emitted_names() if f"`{name}`" not in doc_text
    )
    assert not undocumented, (
        "metric/span names emitted in src/repro but missing from "
        f"docs/METRICS.md: {undocumented} — add a row per name "
        "(and a constant in src/repro/obs/names.py if it bypassed the "
        "catalogue)"
    )


def test_documented_metrics_point_back_at_real_code():
    """Every `file.py:symbol` pointer in the metrics tables exists."""
    doc_text = METRICS_DOC.read_text(encoding="utf-8")
    pointers = re.findall(r"`(src/repro/[\w/]+\.py):", doc_text)
    missing = sorted(
        {p for p in pointers if not (REPO_ROOT / p).is_file()}
    )
    assert not missing, f"docs/METRICS.md points at missing files: {missing}"
