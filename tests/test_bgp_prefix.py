"""Tests for IPv4 prefixes and the longest-prefix-match trie."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix, PrefixTrie
from repro.netflow.record import ip_to_int


class TestPrefix:
    def test_parse_with_length(self):
        p = Prefix.parse("10.1.0.0/16")
        assert p.network == ip_to_int("10.1.0.0")
        assert p.length == 16

    def test_parse_bare_address_is_host(self):
        assert Prefix.parse("10.0.0.1").length == 32

    def test_parse_masks_host_bits(self):
        p = Prefix.parse("10.1.2.3/16")
        assert p.network == ip_to_int("10.1.0.0")

    def test_host_constructor(self):
        p = Prefix.host("192.0.2.1")
        assert p.length == 32 and p.contains(ip_to_int("192.0.2.1"))

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(network=ip_to_int("10.0.0.1"), length=24)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(network=0, length=33)

    def test_contains(self):
        p = Prefix.parse("10.1.0.0/16")
        assert p.contains(ip_to_int("10.1.255.255"))
        assert not p.contains(ip_to_int("10.2.0.0"))

    def test_default_route_contains_everything(self):
        p = Prefix(network=0, length=0)
        assert p.contains(0) and p.contains(2**32 - 1)

    def test_covers(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_str(self):
        assert str(Prefix.parse("10.1.0.0/16")) == "10.1.0.0/16"

    def test_ordering_stable(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        assert sorted([b, a]) == [a, b]


class TestPrefixTrie:
    def test_insert_and_lookup(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "outer")
        trie.insert(Prefix.parse("10.1.0.0/16"), "inner")
        match = trie.longest_match(ip_to_int("10.1.2.3"))
        assert match is not None
        prefix, value = match
        assert value == "inner" and prefix.length == 16

    def test_longest_match_falls_back(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "outer")
        match = trie.longest_match(ip_to_int("10.200.0.1"))
        assert match is not None and match[1] == "outer"

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert trie.longest_match(ip_to_int("11.0.0.1")) is None

    def test_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        assert trie.remove(p)
        assert len(trie) == 0
        assert not trie.covers(ip_to_int("10.0.0.1"))

    def test_remove_missing_returns_false(self):
        trie = PrefixTrie()
        assert not trie.remove(Prefix.parse("10.0.0.0/8"))

    def test_replace_value(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        trie.insert(p, "b")
        assert len(trie) == 1
        assert trie.longest_match(ip_to_int("10.0.0.1"))[1] == "b"

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(network=0, length=0), "default")
        assert trie.longest_match(12345)[1] == "default"

    def test_items_roundtrip(self):
        trie = PrefixTrie()
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("192.0.2.1/32"),
        ]
        for i, p in enumerate(prefixes):
            trie.insert(p, i)
        assert {p for p, _ in trie.items()} == set(prefixes)

    def test_covers_batch_matches_scalar(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie.insert(Prefix.parse("192.0.2.0/24"), 2)
        addresses = np.array(
            [ip_to_int(a) for a in ("10.5.5.5", "11.0.0.1", "192.0.2.77", "192.0.3.1")],
            dtype=np.uint32,
        )
        expected = [trie.covers(int(a)) for a in addresses]
        np.testing.assert_array_equal(trie.covers_batch(addresses), expected)

    def test_covers_batch_empty(self):
        assert PrefixTrie().covers_batch(np.empty(0, dtype=np.uint32)).shape == (0,)


@settings(max_examples=50, deadline=None)
@given(
    prefixes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=32),
        ),
        min_size=1,
        max_size=20,
    ),
    address=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_trie_matches_linear_scan(prefixes, address):
    """LPM result equals the brute-force most-specific containing prefix."""
    trie = PrefixTrie()
    normalized = []
    for network, length in prefixes:
        mask = Prefix._mask_for(length)
        p = Prefix(network=network & mask, length=length)
        trie.insert(p, str(p))
        normalized.append(p)
    containing = [p for p in normalized if p.contains(address)]
    match = trie.longest_match(address)
    if not containing:
        assert match is None
    else:
        best_length = max(p.length for p in containing)
        assert match is not None
        assert match[0].length == best_length
        assert match[0].contains(address)
