"""Sharded parallel streaming execution (``repro.core.parallel``).

Scales the online engine of :mod:`repro.core.streaming` across N worker
shards partitioned by target prefix, with a determinism guarantee:
verdicts are bit-identical to the serial engine for any shard count and
backend (see ``docs/ARCHITECTURE.md`` for why, and
``tests/test_property_invariants.py`` / ``tests/test_golden_traces.py``
for the harness that enforces it).

* :class:`ShardPlan` — target-prefix hash sharding with operator pins;
* :class:`ShardedStreamingScrubber` — the coordinator engine;
* :class:`SerialBackend` / :class:`ProcessBackend` — where shard work runs
  (plus the fault-tolerant ``supervised`` backend from
  :mod:`repro.core.resilience`);
* :class:`ShardFailure` — typed dead-worker error from the process backend;
* :class:`EquivalenceError` — raised by the debug equivalence shadow.
"""

from repro.core.parallel.backends import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ShardFailure,
    make_backend,
)
from repro.core.parallel.engine import EquivalenceError, ShardedStreamingScrubber
from repro.core.parallel.sharding import ShardPlan

__all__ = [
    "BACKENDS",
    "EquivalenceError",
    "ProcessBackend",
    "SerialBackend",
    "ShardFailure",
    "ShardPlan",
    "ShardedStreamingScrubber",
    "make_backend",
]
