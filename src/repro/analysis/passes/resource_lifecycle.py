"""Resource-lifecycle pass: RS601–RS604 over the CFG dataflow engine.

The engine owns OS-level resources — shared-memory segments, the model
plane, journal file handles, worker processes — whose leaks only show
up at runtime (as orphaned ``/dev/shm`` segments or resource-tracker
warnings after a crash). This pass turns "every acquired resource is
released on every path out of the acquiring function" into a lint-gated
contract, using :mod:`repro.analysis.cfg`:

* **RS601** — a resource may reach a *normal* exit (a ``return`` or
  falling off the end) while still live: no release call, no escape,
  no ownership transfer. Acquiring a constructor and discarding the
  result is the degenerate case.
* **RS602** — every normal path releases, but an *exception* path does
  not: a call between acquisition and release can raise, and no
  handler or ``finally`` cleans up. This is the classic
  partially-constructed-state leak.
* **RS603** — the ``__init__`` variant: the resource was transferred
  to ``self``, but a later statement of ``__init__`` can raise, so the
  half-built object (which the caller never receives) strands the
  resource. The fix is a handler that releases and re-raises.
* **RS604** — ownership was transferred to an attribute of a class
  that defines no release method (``close``/``destroy``/... /
  ``__del__``/``__exit__``): the resource has an owner that cannot
  ever let it go. Classes with base classes are exempt — the parent
  may provide the release.

What counts as settling a resource's fate:

* a **release call** — ``x.close()``, ``self._shm.unlink()``, or a
  blanket ``self.close()`` (which settles every self-owned site);
* an **escape** — the tracked name passed as a call argument
  (``weakref.finalize(self, _reap, seg)``, ``os.close(fd)``,
  ``_destroy_segment(segment)``) or returned: ownership moved to code
  this intraprocedural analysis cannot see, so it stops tracking;
* a **transfer to self** — ``self._shm = seg``: the object now owns
  it (subject to RS603/RS604);
* a **``with`` block** — ``with open(p) as f:`` is managed by the
  context manager and never tracked;
* an **alias** — ``y = x`` stops tracking (either name may release).

Exception edges see a statement's *pre* state with releases applied:
an acquisition that raised never acquired, but a ``close()`` that
raised still counts as released (else every ``finally: x.close()``
would flag its own failure edge). Branch refinements kill facts on
``x is None`` edges, so the conditional-acquire +
``if x is not None: x.close()`` idiom verifies cleanly.

Only *directly assigned* acquisitions are tracked; a constructor call
buried in a larger expression (``json.load(open(p))``) escapes into
that expression unseen. That trade keeps the pass quiet enough to gate
CI; the corpus pins the supported shapes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import cfg as cfglib
from repro.analysis.cfg import CFG, Block, DataflowAnalysis
from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Module,
    Project,
    ScopeStack,
    attr_chain,
    collect_bindings,
    import_table,
)

__all__ = ["ResourceLifecyclePass"]

#: Methods whose *presence on a class* makes it a valid resource owner.
_OWNER_METHODS_EXTRA = frozenset({"__del__", "__exit__"})


@dataclass(frozen=True)
class _Site:
    """One acquisition site."""

    line: int
    col: int
    label: str  # human label from the constructor table
    var: str  # name it was bound to at acquisition ("" if discarded)


@dataclass
class _Actions:
    """Static effects of one CFG block on the resource facts."""

    gens: list[tuple[int, str, str]] = field(default_factory=list)
    release_keys: set[str] = field(default_factory=set)
    escape_keys: set[str] = field(default_factory=set)
    rebind_keys: set[str] = field(default_factory=set)
    transfers: list[tuple[str, str]] = field(default_factory=list)
    self_release: bool = False


def _var_key(node: ast.AST) -> Optional[str]:
    parts = attr_chain(node)
    return ".".join(parts) if parts else None


class _ResourceFlow(DataflowAnalysis):
    """Forward may-analysis: the set of live (site, varkey, owner)."""

    direction = "forward"

    def __init__(self, actions: dict[int, _Actions]):
        self.actions = actions

    def transfer(self, block: Block, fact):
        return self._apply(block, fact, exc=False)

    def transfer_exc(self, block: Block, fact):
        return self._apply(block, fact, exc=True)

    def refine(self, fact, edge):
        if edge.refine is not None and edge.refine[0] == "none":
            key = edge.refine[1]
            return frozenset(f for f in fact if f[1] != key)
        return fact

    def _apply(self, block: Block, fact, exc: bool):
        actions = self.actions.get(block.index)
        if actions is None:
            return fact
        out = set(fact)
        if actions.self_release:
            out = {f for f in out if f[2] != "self"}
        if actions.release_keys:
            out = {f for f in out if f[1] not in actions.release_keys}
        if actions.escape_keys:
            out = {f for f in out if f[1] not in actions.escape_keys}
        if not exc:
            # Rebinds, transfers and acquisitions only take effect when
            # the statement completed.
            if actions.rebind_keys:
                out = {f for f in out if f[1] not in actions.rebind_keys}
            for src, dst in actions.transfers:
                out = {
                    (f[0], dst, "self") if f[1] == src else f for f in out
                }
            out.update(actions.gens)
        return frozenset(out)


class _FunctionCheck:
    """RS601–RS604 for one function of one module."""

    def __init__(
        self,
        module: Module,
        config: LintConfig,
        resolve_table: dict[str, str],
        qualname: str,
        func: ast.AST,
        cls: Optional[ast.ClassDef],
    ):
        self.module = module
        self.config = config
        self.table = resolve_table
        self.qualname = qualname
        self.func = func
        self.cls = cls
        self.scopes = ScopeStack(collect_bindings(module.tree))
        self.scopes.push(collect_bindings(func))
        self.sites: list[_Site] = []
        self.findings: list[Finding] = []
        self.rs604_seen: set[str] = set()
        #: (block_index, stmt, src_name, self_key) for every
        #: ``self.attr = name`` — whether it moves a *resource* is only
        #: known after the dataflow solve, so RS604 checks are deferred.
        self.pending_transfers: list[tuple[int, ast.stmt, str, str]] = []
        self._block_index = -1

    # -- resolution -----------------------------------------------------
    def _resolve(self, node: ast.AST) -> Optional[str]:
        parts = attr_chain(node)
        if parts is None:
            return None
        head = parts[0]
        if self.scopes.is_local(head):
            return None
        target = self.table.get(head)
        if target is None:
            return None
        return ".".join([target] + parts[1:])

    def _constructor_label(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            if not self.scopes.is_bound("open"):
                return self.config.resource_constructors.get("open")
        dotted = self._resolve(func)
        if dotted is not None:
            label = self.config.resource_constructors.get(dotted)
            if label is not None:
                return label
        parts = attr_chain(func)
        if parts and parts[-1] in self.config.resource_spawn_attrs:
            return "worker process"
        return None

    def _value_constructor(self, value: ast.AST) -> Optional[tuple[ast.Call, str]]:
        """The constructor call an assigned value acquires, if any."""
        candidates = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for cand in candidates:
            if isinstance(cand, ast.Call):
                label = self._constructor_label(cand)
                if label is not None:
                    return cand, label
        return None

    # -- per-block action extraction ------------------------------------
    def _actions_for(self, block: Block) -> Optional[_Actions]:
        stmt = block.stmt
        if stmt is None:
            return None
        actions = _Actions()
        if block.role == "stmt":
            self._stmt_actions(stmt, actions)
            exprs = [stmt]
        elif block.role == "test":
            exprs = [stmt.test]
        elif block.role == "loop":
            exprs = [stmt.iter]
            for name in collect_bindings(stmt.target):
                actions.rebind_keys.add(name)
        elif block.role == "with":
            self._with_actions(stmt, actions)
            exprs = []
        elif block.role == "except":
            if getattr(stmt, "name", None):
                actions.rebind_keys.add(stmt.name)
            exprs = []
        else:  # join / with-exit
            return None
        for expr in exprs:
            self._call_effects(expr, actions)
        if (
            actions.gens
            or actions.release_keys
            or actions.escape_keys
            or actions.rebind_keys
            or actions.transfers
            or actions.self_release
        ):
            return actions
        return None

    def _call_effects(self, node: ast.AST, actions: _Actions) -> None:
        """Releases and escapes from every call executed by ``node``."""
        for n in cfglib._walk_executed(node):
            if not isinstance(n, ast.Call):
                continue
            func = n.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.config.resource_release_methods
            ):
                base = _var_key(func.value)
                if base == "self":
                    actions.self_release = True
                elif base is not None:
                    actions.release_keys.add(base)
            for arg in list(n.args) + [kw.value for kw in n.keywords]:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                if isinstance(arg, ast.Name):
                    actions.escape_keys.add(arg.id)
                elif isinstance(arg, (ast.Tuple, ast.List)):
                    for elt in arg.elts:
                        if isinstance(elt, ast.Name):
                            actions.escape_keys.add(elt.id)

    def _gen(
        self, actions: _Actions, call: ast.Call, label: str, key: str, owner: str
    ) -> None:
        site = len(self.sites)
        self.sites.append(
            _Site(
                line=call.lineno,
                col=call.col_offset + 1,
                label=label,
                var=key,
            )
        )
        actions.gens.append((site, key, owner))

    def _stmt_actions(self, stmt: ast.stmt, actions: _Actions) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None or len(targets) != 1:
                return
            target = targets[0]
            acquired = self._value_constructor(value)
            if isinstance(target, ast.Name):
                actions.rebind_keys.add(target.id)
                if acquired is not None:
                    self._gen(actions, acquired[0], acquired[1], target.id, "local")
                elif isinstance(value, ast.Name):
                    # Alias: either name may release it later; stop
                    # tracking rather than guess.
                    actions.escape_keys.add(value.id)
            else:
                self_key = self._self_target_key(target)
                if self_key is None:
                    return
                actions.rebind_keys.add(self_key)
                if acquired is not None:
                    self._gen(actions, acquired[0], acquired[1], self_key, "self")
                    self._check_rs604(stmt, self_key, acquired[1])
                elif isinstance(value, ast.Name):
                    actions.transfers.append((value.id, self_key))
                    self.pending_transfers.append(
                        (self._block_index, stmt, value.id, self_key)
                    )
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            label = self._constructor_label(stmt.value)
            if label is not None:
                self._gen(
                    actions,
                    stmt.value,
                    label,
                    f"<discarded:{stmt.value.lineno}>",
                    "local",
                )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            values = (
                list(stmt.value.elts)
                if isinstance(stmt.value, (ast.Tuple, ast.List))
                else [stmt.value]
            )
            for v in values:
                if isinstance(v, ast.Name):
                    actions.escape_keys.add(v.id)

    def _self_target_key(self, target: ast.AST) -> Optional[str]:
        """``self._shm`` -> "self._shm"; ``self._rings[i]`` -> "self._rings[]"."""
        if isinstance(target, ast.Attribute):
            key = _var_key(target)
            if key is not None and key.split(".")[0] == "self":
                return key
        elif isinstance(target, ast.Subscript):
            key = _var_key(target.value)
            if key is not None and key.split(".")[0] == "self":
                return key + "[]"
        return None

    def _with_actions(self, stmt: ast.AST, actions: _Actions) -> None:
        for item in stmt.items:
            # A constructor entered via `with` is managed by its
            # context manager: never tracked. An already-live name used
            # as a context manager (contextlib.closing(x)) escapes.
            for n in cfglib._walk_executed(item.context_expr):
                if isinstance(n, ast.Name):
                    actions.escape_keys.add(n.id)
            if item.optional_vars is not None:
                for name in collect_bindings(item.optional_vars):
                    actions.rebind_keys.add(name)

    # -- RS604 ----------------------------------------------------------
    def _class_can_release(self) -> bool:
        if self.cls is None:
            return True
        if self.cls.bases:
            return True  # a parent class may provide the release
        release = self.config.resource_release_methods | _OWNER_METHODS_EXTRA
        for node in self.cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in release:
                    return True
        return False

    def _check_rs604(
        self, stmt: ast.stmt, self_key: str, label: Optional[str]
    ) -> None:
        if self.cls is None or self._class_can_release():
            return
        dedupe = f"{self.cls.name}:{self_key}"
        if dedupe in self.rs604_seen:
            return
        self.rs604_seen.add(dedupe)
        what = label or "a tracked resource"
        self.findings.append(
            Finding(
                rule="RS604",
                path=self.module.rel,
                line=stmt.lineno,
                col=stmt.col_offset + 1,
                message=(
                    f"{what} stored on {self_key} but class "
                    f"{self.cls.name} defines no release method "
                    "(close/destroy/unlink/...) — the owner can never "
                    "let it go"
                ),
                symbol=self.qualname,
                key=f"resource-owner:{dedupe}",
            )
        )

    # -- driver ---------------------------------------------------------
    def analyze(self) -> list[Finding]:
        graph = CFG.build(self.func)
        actions: dict[int, _Actions] = {}
        for block in graph.blocks:
            self._block_index = block.index
            a = self._actions_for(block)
            if a is not None:
                actions[block.index] = a
        if not self.sites:
            return self.findings
        facts = cfglib.solve(graph, _ResourceFlow(actions))
        # RS604: a transfer only matters when the transferred name holds
        # a live resource at that statement.
        for bindex, stmt, src, self_key in self.pending_transfers:
            live = [
                f for f in facts[bindex] if f[1] == src and f[2] == "local"
            ]
            if live:
                label = self.sites[live[0][0]].label
                self._check_rs604(stmt, self_key, label)
        exit_fact = facts[CFG.EXIT]
        raise_fact = facts[CFG.RAISE]
        is_init = getattr(self.func, "name", "") == "__init__"
        for index, site in enumerate(self.sites):
            at_exit = any(
                f[0] == index and f[2] == "local" for f in exit_fact
            )
            at_raise_local = any(
                f[0] == index and f[2] == "local" for f in raise_fact
            )
            at_raise_self = any(
                f[0] == index and f[2] == "self" for f in raise_fact
            )
            if at_exit:
                self._leak(
                    "RS601",
                    site,
                    f"{site.label} ({site.var}) may leak on a normal path "
                    f"out of {self.qualname} — release it, transfer "
                    "ownership, or use a with-block",
                )
            elif at_raise_local:
                self._leak(
                    "RS602",
                    site,
                    f"{site.label} ({site.var}) leaks when a later call "
                    f"raises in {self.qualname} — add a try/finally or an "
                    "exception handler that releases it",
                )
            if at_raise_self and is_init:
                self._leak(
                    "RS603",
                    site,
                    f"{site.label} on {site.var} is stranded when "
                    f"__init__ raises after acquiring it — release in an "
                    "exception handler and re-raise",
                )
        return self.findings

    def _leak(self, rule: str, site: _Site, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.rel,
                line=site.line,
                col=site.col,
                message=message,
                symbol=self.qualname,
                key=f"resource:{site.label}:{site.var}",
            )
        )


class ResourceLifecyclePass:
    """RS601/RS602/RS603/RS604 over every function of the package."""

    name = "resource_lifecycle"
    scope = "module"
    rule_ids = ("RS601", "RS602", "RS603", "RS604")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self.run_module(module, config))
        return findings

    def run_module(self, module: Module, config: LintConfig) -> list[Finding]:
        if module.name.split(".")[0] != config.package:
            return []
        table = dict(import_table(module))
        for node in module.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Module-local constructors resolve like imports do:
                # `attach_segment(...)` inside shm.py is
                # `repro.core.parallel.shm.attach_segment`.
                table.setdefault(node.name, f"{module.name}.{node.name}")
        findings: list[Finding] = []
        for qualname, func, cls in cfglib.iter_functions(module.tree):
            check = _FunctionCheck(module, config, table, qualname, func, cls)
            findings.extend(check.analyze())
        return findings
