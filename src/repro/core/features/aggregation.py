"""Flow -> per-target record aggregation (paper §5.2.1, Fig. 7).

Flows are grouped by (one-minute bin, target IP). Within each group,
every categorical property is ranked by every metric; the top-``RANKS``
keys and their metric values become the record's features. A record is
labeled blackhole when any of its flows carries the blackhole label.
Matched tagging rules are carried through aggregation as annotations
(they explain classifications later and feed the RBC baseline — they are
*not* classifier features, which would leak the label construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.features import schema
from repro.obs import names as metric_names
from repro.core.rules.matcher import match_matrix
from repro.core.rules.model import TaggingRule
from repro.netflow.dataset import BIN_SECONDS, FlowDataset


@dataclass
class AggregatedDataset:
    """Per-(bin, target IP) records with rank features.

    ``categorical`` maps key-column names to int64 arrays
    (``schema.MISSING_KEY`` marks absent ranks); ``metrics`` maps
    value-column names to float64 arrays (NaN marks absent ranks).
    """

    bins: np.ndarray
    targets: np.ndarray
    labels: np.ndarray
    categorical: dict[str, np.ndarray]
    metrics: dict[str, np.ndarray]
    n_flows: np.ndarray
    #: Per-record tuple of tagging-rule ids matched by any flow.
    rule_tags: Optional[list[tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        n = self.bins.shape[0]
        for name, arr in [("targets", self.targets), ("labels", self.labels), ("n_flows", self.n_flows)]:
            if arr.shape[0] != n:
                raise ValueError(f"column {name} length mismatch")
        for mapping in (self.categorical, self.metrics):
            for name, arr in mapping.items():
                if arr.shape[0] != n:
                    raise ValueError(f"column {name} length mismatch")
        if self.rule_tags is not None and len(self.rule_tags) != n:
            raise ValueError("rule_tags length mismatch")

    def __len__(self) -> int:
        return int(self.bins.shape[0])

    @property
    def feature_names(self) -> list[str]:
        return list(self.categorical) + list(self.metrics)

    def select(self, mask_or_index: np.ndarray) -> "AggregatedDataset":
        """Subset records by boolean mask or index array."""
        idx = np.asarray(mask_or_index)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        tags = None
        if self.rule_tags is not None:
            tags = [self.rule_tags[i] for i in idx]
        return AggregatedDataset(
            bins=self.bins[idx],
            targets=self.targets[idx],
            labels=self.labels[idx],
            categorical={k: v[idx] for k, v in self.categorical.items()},
            metrics={k: v[idx] for k, v in self.metrics.items()},
            n_flows=self.n_flows[idx],
            rule_tags=tags,
        )

    @classmethod
    def concat(cls, parts: Sequence["AggregatedDataset"]) -> "AggregatedDataset":
        """Concatenate aggregated datasets with identical schemas."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            raise ValueError("nothing to concatenate")
        if len(parts) == 1:
            return parts[0]
        first = parts[0]
        tags: Optional[list[tuple[str, ...]]] = None
        if all(p.rule_tags is not None for p in parts):
            tags = [t for p in parts for t in p.rule_tags]  # type: ignore[union-attr]
        return cls(
            bins=np.concatenate([p.bins for p in parts]),
            targets=np.concatenate([p.targets for p in parts]),
            labels=np.concatenate([p.labels for p in parts]),
            categorical={
                k: np.concatenate([p.categorical[k] for p in parts]) for k in first.categorical
            },
            metrics={
                k: np.concatenate([p.metrics[k] for p in parts]) for k in first.metrics
            },
            n_flows=np.concatenate([p.n_flows for p in parts]),
            rule_tags=tags,
        )

    def time_split(self, boundary_bin: int) -> tuple["AggregatedDataset", "AggregatedDataset"]:
        """Split records into (before, from) ``boundary_bin``."""
        before = self.bins < boundary_bin
        return self.select(before), self.select(~before)

    @property
    def blackhole_share(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.labels.mean())


def _rank_group(
    keys: np.ndarray,
    bytes_: np.ndarray,
    packets: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate one categorical within one record.

    Returns (unique keys, per-key bytes, per-key packets, per-key mean
    packet size). The mean packet size per key is byte-weighted
    (total bytes / total packets), which is what a flow exporter's
    counters support.
    """
    unique, inverse = np.unique(keys, return_inverse=True)
    key_bytes = np.bincount(inverse, weights=bytes_)
    key_packets = np.bincount(inverse, weights=packets)
    with np.errstate(divide="ignore", invalid="ignore"):
        key_size = np.where(key_packets > 0, key_bytes / key_packets, 0.0)
    return unique, key_bytes, key_packets, key_size


def aggregate(
    flows: FlowDataset,
    rules: Sequence[TaggingRule] = (),
    bin_seconds: int = BIN_SECONDS,
) -> AggregatedDataset:
    """Aggregate labeled flows into per-(bin, target) rank features."""
    with obs.span(metric_names.SPAN_FEATURES_AGGREGATE):
        data = _aggregate(flows, rules, bin_seconds)
    obs.counter(metric_names.C_FEATURES_RECORDS_AGGREGATED).inc(len(data))
    return data


def aggregate_batch(
    flows: FlowDataset,
    rules: Sequence[TaggingRule] = (),
    bin_seconds: int = BIN_SECONDS,
) -> AggregatedDataset:
    """Vectorised batch equivalent of :func:`aggregate`.

    Produces bit-identical output to :func:`aggregate` (asserted by
    ``tests/test_property_invariants.py``) but replaces the per-group
    Python loop with a handful of global sorts and segment reductions,
    which is what makes the sharded streaming path
    (:mod:`repro.core.parallel`) fast. Kept separate so the serial
    engine's behaviour — and its benchmark baseline — stays unchanged.
    """
    with obs.span(metric_names.SPAN_FEATURES_AGGREGATE):
        data = _aggregate_batch(flows, rules, bin_seconds)
    obs.counter(metric_names.C_FEATURES_RECORDS_AGGREGATED).inc(len(data))
    return data


def _aggregate(
    flows: FlowDataset,
    rules: Sequence[TaggingRule],
    bin_seconds: int,
) -> AggregatedDataset:
    n = len(flows)
    if n == 0:
        raise ValueError("cannot aggregate an empty flow dataset")

    bins = flows.time_bin(bin_seconds)
    dst = flows.dst_ip

    # Group by (bin, target): sort once, then slice per group.
    order = np.lexsort((dst, bins))
    bins_s = bins[order]
    dst_s = dst[order]
    boundaries = np.flatnonzero((np.diff(bins_s) != 0) | (np.diff(dst_s) != 0)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    n_groups = starts.shape[0]

    cat_values = {
        "src_ip": flows.src_ip[order].astype(np.int64),
        "src_port": flows.src_port[order].astype(np.int64),
        "dst_port": flows.dst_port[order].astype(np.int64),
        "src_mac": flows.src_mac[order].astype(np.int64),
        "protocol": flows.protocol[order].astype(np.int64),
    }
    f_bytes = flows.bytes[order].astype(np.float64)
    f_packets = flows.packets[order].astype(np.float64)
    labels_s = flows.blackhole[order]

    rule_matrix = None
    rule_ids: list[str] = []
    if rules:
        rule_matrix = match_matrix(rules, flows)[order]
        rule_ids = [r.rule_id for r in rules]

    r = schema.RANKS
    categorical = {
        name: np.full(n_groups, schema.MISSING_KEY, dtype=np.int64)
        for name in schema.key_columns()
    }
    metrics = {
        name: np.full(n_groups, np.nan, dtype=np.float64)
        for name in schema.value_columns()
    }
    out_bins = np.empty(n_groups, dtype=np.int64)
    out_targets = np.empty(n_groups, dtype=np.uint32)
    out_labels = np.empty(n_groups, dtype=bool)
    out_nflows = np.empty(n_groups, dtype=np.int64)
    out_tags: Optional[list[tuple[str, ...]]] = [] if rules else None

    metric_arrays = {}
    for g in range(n_groups):
        lo, hi = int(starts[g]), int(ends[g])
        out_bins[g] = bins_s[lo]
        out_targets[g] = dst_s[lo]
        out_labels[g] = bool(labels_s[lo:hi].any())
        out_nflows[g] = hi - lo
        if out_tags is not None:
            hit = rule_matrix[lo:hi].any(axis=0)
            out_tags.append(tuple(rule_ids[k] for k in np.flatnonzero(hit)))

        g_bytes = f_bytes[lo:hi]
        g_packets = f_packets[lo:hi]
        for cat in schema.CATEGORICALS:
            unique, key_bytes, key_packets, key_size = _rank_group(
                cat_values[cat][lo:hi], g_bytes, g_packets
            )
            metric_arrays["bytes"] = key_bytes
            metric_arrays["packets"] = key_packets
            metric_arrays["packet_size"] = key_size
            for metric in schema.METRICS:
                values = metric_arrays[metric]
                top = np.argsort(values, kind="stable")[::-1][:r]
                for rank, idx in enumerate(top):
                    categorical[schema.key_column(cat, metric, rank)][g] = unique[idx]
                    metrics[schema.value_column(cat, metric, rank)][g] = values[idx]

    return AggregatedDataset(
        bins=out_bins,
        targets=out_targets,
        labels=out_labels,
        categorical=categorical,
        metrics=metrics,
        n_flows=out_nflows,
        rule_tags=out_tags,
    )


def _aggregate_batch(
    flows: FlowDataset,
    rules: Sequence[TaggingRule],
    bin_seconds: int,
) -> AggregatedDataset:
    """Global-sort implementation of the (bin, target) aggregation.

    Bit-equality with ``_aggregate`` rests on two invariants:

    * per-(group, key) byte/packet sums go through ``np.bincount``, whose
      strictly sequential accumulation matches the loop path's
      ``bincount(inverse, weights)`` as long as equal-key flows keep
      their relative order (all sorts below are stable);
    * ranking reproduces ``argsort(values, kind="stable")[::-1][:r]``,
      i.e. metric descending with ties broken by *descending* key value
      (keys are unique per group, so that order is total).
    """
    n = len(flows)
    if n == 0:
        raise ValueError("cannot aggregate an empty flow dataset")

    bins = flows.time_bin(bin_seconds)
    dst = flows.dst_ip

    order = np.lexsort((dst, bins))
    bins_s = bins[order]
    dst_s = dst[order]
    boundaries = np.flatnonzero((np.diff(bins_s) != 0) | (np.diff(dst_s) != 0)) + 1
    starts = np.concatenate([[0], boundaries])
    n_groups = starts.shape[0]
    group_sizes = np.diff(np.concatenate([starts, [n]]))
    group_ids = np.repeat(np.arange(n_groups), group_sizes)

    f_bytes = flows.bytes[order].astype(np.float64)
    f_packets = flows.packets[order].astype(np.float64)
    labels_s = flows.blackhole[order]

    out_bins = bins_s[starts].astype(np.int64)
    out_targets = dst_s[starts].astype(np.uint32)
    out_labels = np.logical_or.reduceat(labels_s, starts)
    out_nflows = group_sizes.astype(np.int64)

    out_tags: Optional[list[tuple[str, ...]]] = None
    if rules:
        rule_matrix = match_matrix(rules, flows)[order]
        rule_ids = [r.rule_id for r in rules]
        hits = np.logical_or.reduceat(rule_matrix, starts, axis=0)
        out_tags = [()] * n_groups
        for g in np.flatnonzero(hits.any(axis=1)):
            out_tags[g] = tuple(rule_ids[k] for k in np.flatnonzero(hits[g]))

    r = schema.RANKS
    categorical = {
        name: np.full(n_groups, schema.MISSING_KEY, dtype=np.int64)
        for name in schema.key_columns()
    }
    metrics = {
        name: np.full(n_groups, np.nan, dtype=np.float64)
        for name in schema.value_columns()
    }

    cat_values = {
        "src_ip": flows.src_ip[order].astype(np.int64),
        "src_port": flows.src_port[order].astype(np.int64),
        "dst_port": flows.dst_port[order].astype(np.int64),
        "src_mac": flows.src_mac[order].astype(np.int64),
        "protocol": flows.protocol[order].astype(np.int64),
    }

    for cat in schema.CATEGORICALS:
        keys = cat_values[cat]
        # Segment the batch by (group, key); stable sort keeps equal
        # (group, key) flows in their original relative order.
        order2 = np.lexsort((keys, group_ids))
        g2 = group_ids[order2]
        k2 = keys[order2]
        seg_new = np.empty(n, dtype=bool)
        seg_new[0] = True
        seg_new[1:] = (np.diff(g2) != 0) | (np.diff(k2) != 0)
        seg_id = np.cumsum(seg_new) - 1
        n_seg = int(seg_id[-1]) + 1

        seg_bytes = np.bincount(seg_id, weights=f_bytes[order2], minlength=n_seg)
        seg_packets = np.bincount(seg_id, weights=f_packets[order2], minlength=n_seg)
        with np.errstate(divide="ignore", invalid="ignore"):
            seg_size = np.where(seg_packets > 0, seg_bytes / seg_packets, 0.0)

        seg_starts = np.flatnonzero(seg_new)
        seg_group = g2[seg_starts]
        seg_key = k2[seg_starts]

        # Flip each group's segments to key-descending so a later stable
        # sort on the metric alone breaks ties exactly like the loop
        # path's reversed stable argsort.
        seg_counts = np.bincount(seg_group, minlength=n_groups)
        # Exclusive prefix sum, without rebuilding an array per category.
        seg_gstart = np.cumsum(seg_counts) - seg_counts
        idx = np.arange(n_seg)
        rev = seg_gstart[seg_group] + seg_counts[seg_group] - 1 - (idx - seg_gstart[seg_group])
        key_d = seg_key[rev]
        values_d = {
            "bytes": seg_bytes[rev],
            "packets": seg_packets[rev],
            "packet_size": seg_size[rev],
        }

        for metric in schema.METRICS:
            vals = values_d[metric]
            ranked = np.lexsort((-vals, seg_group))
            rank_within = idx - seg_gstart[seg_group[ranked]]
            take = rank_within < r
            g_sel = seg_group[ranked][take]
            r_sel = rank_within[take]
            key_sel = key_d[ranked][take]
            val_sel = vals[ranked][take]
            for rank in range(r):
                at = r_sel == rank
                if not at.any():
                    continue
                categorical[schema.key_column(cat, metric, rank)][g_sel[at]] = key_sel[at]
                metrics[schema.value_column(cat, metric, rank)][g_sel[at]] = val_sel[at]

    return AggregatedDataset(
        bins=out_bins,
        targets=out_targets,
        labels=out_labels,
        categorical=categorical,
        metrics=metrics,
        n_flows=out_nflows,
        rule_tags=out_tags,
    )
