"""Lint runner: passes -> suppressions -> baseline -> report.

:func:`run_lint` is the one entry point the CLI, CI and the test suite
share. The filtering order matters and is part of the contract:

1. every pass runs over the whole project (contracts like layering and
   obs-names need the global view even when only a few paths are
   reported);
2. inline suppressions are applied; malformed ones (RS001) and unused
   ones (RS002) are *added* as findings, so an ignore comment can never
   rot silently;
3. the baseline absorbs known fingerprints; entries without a
   justification surface as RS003 and stale entries are reported so the
   file shrinks back toward empty.

Exit semantics (used by ``repro lint`` and CI): findings outside the
baseline -> 1, otherwise 0.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.config import LintConfig
from repro.analysis.findings import RULES, Finding
from repro.analysis.passes import ALL_PASSES
from repro.analysis.project import Project
from repro.analysis.suppressions import Suppression, scan_suppressions

__all__ = ["LintResult", "run_lint", "format_human", "format_json"]

#: Schema version of the ``--format json`` payload; bump on breaking
#: changes (tests/test_cli.py pins the shape).
JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _under(finding: Finding, paths: Sequence[str]) -> bool:
    if not paths:
        return True
    return any(
        finding.path == p or finding.path.startswith(p.rstrip("/") + "/")
        for p in paths
    )


def run_lint(
    config: LintConfig,
    paths: Sequence[str] = (),
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run every pass and fold in suppressions and the baseline.

    ``paths`` restricts which findings are *reported* (posix paths
    relative to the lint root); the analysis itself always sees the
    whole project. ``rules`` restricts to a subset of rule ids.
    ``baseline=None`` loads ``config.baseline_path``; pass an empty
    :class:`Baseline` to lint without one.
    """
    project = Project.load(config.src_root, rel_to=config.rel_to)
    result = LintResult(modules_scanned=len(project.modules))

    raw: list[Finding] = []
    for pass_cls in ALL_PASSES:
        raw.extend(pass_cls().run(project, config))

    suppressions: list[Suppression] = []
    for module in project.modules:
        if module.name.split(".")[0] != config.package:
            continue
        found, malformed = scan_suppressions(module.rel, module.source)
        suppressions.extend(found)
        raw.extend(malformed)

    kept: list[Finding] = []
    for finding in raw:
        match = next(
            (s for s in suppressions if s.matches(finding)), None
        )
        if match is not None:
            match.used = True
            result.suppressed.append((finding, match))
        else:
            kept.append(finding)

    for suppression in suppressions:
        if not suppression.used:
            kept.append(
                Finding(
                    rule="RS002",
                    path=suppression.path,
                    line=suppression.line,
                    col=1,
                    message=(
                        "unused suppression for "
                        f"{', '.join(suppression.rules)} — no matching "
                        "finding on the suppressed line; delete the comment"
                    ),
                    key=f"unused-suppression:{','.join(suppression.rules)}",
                )
            )

    if baseline is None:
        baseline = (
            load_baseline(config.baseline_path)
            if config.baseline_path is not None
            else Baseline()
        )
    for entry in baseline.unjustified():
        kept.append(
            Finding(
                rule="RS003",
                path=str(baseline.path) if baseline.path else "baseline",
                line=1,
                col=1,
                message=(
                    f"baseline entry {entry.fingerprint} ({entry.rule} in "
                    f"{entry.path}) has no justification — explain why it "
                    "is accepted or fix it"
                ),
                key=f"unjustified:{entry.fingerprint}",
            )
        )
    result.stale_baseline = baseline.stale(kept)

    if rules:
        wanted = set(rules)
        kept = [f for f in kept if f.rule in wanted]

    for finding in sorted(kept, key=lambda f: f.sort_key):
        if not _under(finding, paths):
            continue
        if finding in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def format_human(result: LintResult) -> str:
    """The terminal report."""
    lines = [f.render() for f in result.findings]
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.modules_scanned} module(s) scanned"
    )
    if result.stale_baseline:
        summary += (
            f"; {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(safe to delete)"
        )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Stable machine-readable report (schema pinned by tests)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.as_dict() for f in result.findings],
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
        },
        "modules_scanned": result.modules_scanned,
        "rules": RULES,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
