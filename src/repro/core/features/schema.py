"""Feature schema of the aggregation step (paper §5.2.1, Fig. 7).

Per (one-minute bin, target IP) record, each categorical flow property
is ranked by each non-categorical metric with ``RANKS`` ranks. Every
(categorical, metric, rank) cell yields two columns: the categorical
*key* at that rank and the aggregated metric *value* — 5 x 3 x 5 x 2
= 150 feature columns, matching the paper.

Column naming follows the paper's Fig. 10 notation
``categorical/metric/rank`` for the key column, with ``/value``
appended for the metric column.
"""

from __future__ import annotations

#: Categorical flow properties C (paper: source IPs, source port,
#: destination port, source MAC address, transport protocol).
CATEGORICALS: tuple[str, ...] = (
    "src_ip",
    "src_port",
    "dst_port",
    "src_mac",
    "protocol",
)

#: Non-categorical metrics M (paper: mean packet size, sum of bytes,
#: sum of packets).
METRICS: tuple[str, ...] = ("packet_size", "bytes", "packets")

#: Ranking resolution r.
RANKS = 5

#: Sentinel for a missing categorical key (fewer distinct values than
#: ranks in a record).
MISSING_KEY = -1


def key_column(categorical: str, metric: str, rank: int) -> str:
    """Name of the categorical-key column for one ranking cell."""
    return f"{categorical}/{metric}/{rank}"


def value_column(categorical: str, metric: str, rank: int) -> str:
    """Name of the metric-value column for one ranking cell."""
    return f"{categorical}/{metric}/{rank}/value"


def key_columns() -> list[str]:
    """All categorical-key column names, in canonical order."""
    return [
        key_column(c, m, r)
        for c in CATEGORICALS
        for m in METRICS
        for r in range(RANKS)
    ]


def value_columns() -> list[str]:
    """All metric-value column names, in canonical order."""
    return [
        value_column(c, m, r)
        for c in CATEGORICALS
        for m in METRICS
        for r in range(RANKS)
    ]


def all_columns() -> list[str]:
    """All 150 feature columns (keys then values)."""
    return key_columns() + value_columns()


def parse_column(name: str) -> tuple[str, str, int, bool]:
    """Decompose a column name into (categorical, metric, rank, is_value)."""
    parts = name.split("/")
    if len(parts) == 4 and parts[3] == "value":
        return parts[0], parts[1], int(parts[2]), True
    if len(parts) == 3:
        return parts[0], parts[1], int(parts[2]), False
    raise ValueError(f"malformed feature column name: {name!r}")
