"""Experiment E-F10: XGB feature importance by average gain (Fig. 10).

Fits the recommended XGB model on the merged corpus and reports the top
features ranked by average split gain, in the paper's
``categorical/metric/rank`` notation.

Expected shape: the top features mix temporally stable vector
properties (source ports, packet sizes, protocol) with drifting local
knowledge (source IPs / reflectors) — no single feature family
dominates exclusively, and all are attack-relevant.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.encoding.transforms import Imputer
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import merged_corpus


def run(scale: str = "small", top: int = 10) -> ExperimentResult:
    check_scale(scale)
    merged = merged_corpus(scale)
    woe = WoEEncoder().fit(merged)
    matrix = assemble(merged, woe)
    X = Imputer().fit_transform(matrix.X)

    model = GradientBoostedTrees()
    model.fit(X, matrix.y)
    gains = model.average_gain()
    order = np.argsort(gains)[::-1][:top]

    result = ExperimentResult(experiment="fig10-features")
    for rank, j in enumerate(order):
        result.rows.append(
            {
                "rank": rank + 1,
                "feature": matrix.columns[j],
                "avg_gain": float(gains[j]),
                "n_splits": int(model.feature_splits_[j]),
            }
        )
    domains = {matrix.columns[j].split("/")[0] for j in order}
    result.notes["distinct_domains_in_top"] = len(domains)
    result.notes["domains"] = ",".join(sorted(domains))
    return result
