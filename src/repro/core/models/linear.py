"""Linear support vector machine (LSVM).

Primal optimisation of the (squared) hinge loss with L2 regularisation
using scipy's L-BFGS — deterministic and fast for our feature counts.
The ``C``/``loss``/``class_weight`` parameters mirror the paper's grid
(Table 4).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.models.base import Classifier, check_fit_inputs


class LinearSVM(Classifier):
    """L2-regularised linear SVM trained in the primal."""

    name = "LSVM"

    def __init__(
        self,
        C: float = 1.0,
        loss: str = "squared_hinge",
        class_weight: str | None = None,
        max_iter: int = 200,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if loss not in ("hinge", "squared_hinge"):
            raise ValueError("loss must be 'hinge' or 'squared_hinge'")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.C = C
        self.loss = loss
        self.class_weight = class_weight
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_ = 0.0

    def get_params(self) -> dict[str, object]:
        return {"C": self.C, "loss": self.loss, "class_weight": self.class_weight}

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(y.shape[0], dtype=np.float64)
        # Balanced: n / (2 * count(class)).
        n = y.shape[0]
        n_pos = max(int(y.sum()), 1)
        n_neg = max(n - n_pos, 1)
        weights = np.where(y == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))
        return weights.astype(np.float64)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = check_fit_inputs(X, y)
        signs = np.where(y == 1, 1.0, -1.0)
        weights = self._sample_weights(y)
        n, d = X.shape
        squared = self.loss == "squared_hinge"

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = theta[:d], theta[d]
            margin = signs * (X @ w + b)
            slack = np.maximum(0.0, 1.0 - margin)
            if squared:
                loss = float(np.dot(weights, slack**2))
                # d(slack^2)/dmargin = -2 * slack
                coeff = -2.0 * weights * slack * signs
            else:
                loss = float(np.dot(weights, slack))
                coeff = np.where(slack > 0, -weights * signs, 0.0)
            value = 0.5 * float(w @ w) + self.C * loss
            grad_w = w + self.C * (X.T @ coeff)
            grad_b = self.C * float(coeff.sum())
            return value, np.concatenate([grad_w, [grad_b]])

        theta0 = np.zeros(d + 1)
        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearSVM is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        # Platt-style squash of the margin; not calibrated, but useful
        # for ranking/explanations.
        return 1.0 / (1.0 + np.exp(-np.clip(self.decision_function(X), -30, 30)))
