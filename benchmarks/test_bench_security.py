"""E-SEC: Appendix E poisoning attack and WoE-override defense.

Paper shape (argued, not measured, in Appendix E): influencing a
feature's WoE requires traffic volumes comparable to the legitimate
carrier of that feature, and operators can neutralise any poisoned
feature by pinning its WoE.
"""

from repro.experiments import security


def test_security_poisoning(run_experiment):
    result = run_experiment(security)
    print()
    print(result.summary())

    rows_plain = [r for r in result.rows if r["defense"] == "none"]

    # Poison raises the HTTPS WoE monotonically-ish with volume ...
    woe_by_fraction = {r["poison_fraction"]: r["woe_https"] for r in rows_plain}
    fractions = sorted(woe_by_fraction)
    assert woe_by_fraction[fractions[-1]] > woe_by_fraction[0]

    # ... but even 20 % of the training corpus only drags it to ~neutral:
    # flipping a popular feature is expensive (Appendix E's argument).
    assert result.notes["max_woe_https"] < 1.0

    # The classifier stays robust overall (multi-feature decisions), and
    # the override defense keeps the clean-traffic FPR bounded.
    for row in result.rows:
        assert row["fbeta_clean_test"] > 0.9
        assert row["fpr_clean_test"] < 0.1
    assert result.notes["defended_fpr_at_worst"] < 0.1
