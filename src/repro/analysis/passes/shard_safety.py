"""Shard-safety race detector: RS201/RS202/RS203.

The process backend runs ``_worker_main`` in N forked workers, and the
coordinator assumes classification is **stateless given the broadcast
model** — that is what makes verdicts bit-identical across backends and
under fault injection. Any write to state *shared between workers and
coordinator at fork time* breaks that silently: a module global, a
class-level attribute, or a captured closure cell mutated inside a
worker diverges per process, never crashes, and only shows up (if ever)
as drift in a multi-shard chaos run.

This pass makes the assumption machine-checked:

1. index every function/method in the project, recording the calls it
   makes and the writes it performs (scope-aware — locals, parameters
   and instance attributes are fine);
2. build a call graph from the configured worker entry points
   (``_worker_main`` and the fault directive executor in
   ``core/parallel/backends.py``). Attribute calls on objects of
   unknown type over-approximate: they link to *every* project method
   of that name, except ubiquitous builtin-collection names — a race
   detector should err toward reachability;
3. flag, in every reachable function: writes through ``global``
   (RS201), mutations of module-level objects (RS201), writes to
   class-level attributes via ``Cls.attr`` / ``cls.attr`` /
   ``type(self).attr`` / ``self.__class__.attr`` (RS202), and
   ``nonlocal`` writes to captured cells (RS203).

Messages carry the call chain from the entry point so the finding is
reviewable without re-deriving reachability by hand.

RS204 rides along with a different scope rule: raw writes into a
shared-memory mapping (subscript stores or ``pack_into`` through a
``.buf`` attribute) are flagged in *every* project module outside
``config.shm_protocol_modules`` — reachability does not matter,
because a segment poked from coordinator-side code corrupts frames a
worker will read later. The protocol modules own every byte of ring
and model-plane layout (see ``docs/IPC.md``); nothing else may write
segment memory directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Module,
    Project,
    ScopeStack,
    attr_chain,
    collect_bindings,
    import_table,
)

__all__ = ["ShardSafetyPass"]

#: Method names never used for name-based call-graph fallback: they are
#: overwhelmingly builtin-collection / numpy / pipe operations, and
#: linking every project method of the same name would drown the graph.
FALLBACK_DENYLIST = frozenset(
    {
        "append", "add", "update", "extend", "insert", "remove", "discard",
        "clear", "pop", "popitem", "setdefault", "sort", "reverse", "get",
        "keys", "values", "items", "copy", "join", "split", "strip", "read",
        "write", "close", "send", "recv", "poll", "encode", "decode",
        "format", "index", "count", "sum", "mean", "min", "max", "astype",
        "reshape", "tolist", "item", "take", "fill", "seed", "put", "join",
        "start", "terminate", "kill", "is_alive", "set", "reset",
    }
)

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "add", "update", "extend", "insert", "remove", "discard",
        "clear", "pop", "popitem", "setdefault", "sort", "reverse",
        "appendleft", "popleft", "extendleft", "fill", "put", "sort_values",
    }
)


@dataclass
class _Write:
    """A candidate shared-state write inside one function."""

    rule: str
    line: int
    col: int
    detail: str
    key: str


@dataclass
class _FuncInfo:
    qual: str
    module: Module
    node: ast.AST
    klass: Optional[str] = None
    calls_qual: set[str] = field(default_factory=set)
    calls_attr: set[str] = field(default_factory=set)
    writes: list[_Write] = field(default_factory=list)
    children: set[str] = field(default_factory=set)  # nested defs


class _Indexer(ast.NodeVisitor):
    """Collect every function/class of one module with quals."""

    def __init__(self, module: Module, funcs: dict, classes: dict):
        self.module = module
        self.funcs = funcs
        self.classes = classes
        self.stack: list[str] = []  # class/function name path
        self.parent_func: list[str] = []  # qual path of enclosing funcs

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = ".".join([self.module.name] + self.stack + [node.name])
        self.classes[qual] = node
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def _visit_func(self, node) -> None:
        qual = ".".join([self.module.name] + self.stack + [node.name])
        klass = self.stack[-1] if self.stack else None
        in_class = bool(self.stack) and ".".join(
            [self.module.name] + self.stack
        ) in self.classes
        info = _FuncInfo(
            qual=qual,
            module=self.module,
            node=node,
            klass=self.stack[-1] if in_class else None,
        )
        self.funcs[qual] = info
        if self.parent_func:
            self.funcs[self.parent_func[-1]].children.add(qual)
        self.stack.append(node.name)
        self.parent_func.append(qual)
        self.generic_visit(node)
        self.parent_func.pop()
        self.stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


class _BodyAnalyzer(ast.NodeVisitor):
    """Extract calls and shared-state writes from one function body.

    Nested function definitions are skipped — they are indexed as their
    own functions and linked as children.
    """

    def __init__(
        self,
        info: _FuncInfo,
        imports: dict[str, str],
        module_bindings: set[str],
        module_classes: set[str],
        all_classes: set[str],
    ):
        self.info = info
        self.imports = imports
        self.module_bindings = module_bindings
        self.module_classes = module_classes
        self.all_classes = all_classes
        node = info.node
        self.locals = collect_bindings(node)
        self.globals_decl: set[str] = set()
        self.nonlocals_decl: set[str] = set()
        self._collect_decls(node, top=True)

    def _collect_decls(self, node: ast.AST, top: bool) -> None:
        """global/nonlocal statements of this function's own scope."""
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scope: analyzed separately
            if isinstance(child, ast.Global):
                self.globals_decl.update(child.names)
            elif isinstance(child, ast.Nonlocal):
                self.nonlocals_decl.update(child.names)
            else:
                self._collect_decls(child, top=False)

    def run(self) -> None:
        for child in ast.iter_child_nodes(self.info.node):
            self.visit(child)

    def visit_FunctionDef(self, node) -> None:
        return  # separate function; analyzed on its own

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node) -> None:
        return  # local classes: out of scope

    # -- call collection ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.locals and name not in self.globals_decl:
                pass  # bound locally (could be a nested def — children link)
            elif name in self.imports:
                self.info.calls_qual.add(self.imports[name])
            elif name in self.module_bindings:
                self.info.calls_qual.add(f"{self.info.module.name}.{name}")
        elif isinstance(func, ast.Attribute):
            parts = attr_chain(func)
            if parts is not None:
                head = parts[0]
                if head in ("self", "cls") and self.info.klass:
                    owner = self.info.qual.rsplit(".", 2)[0]
                    self.info.calls_qual.add(
                        f"{owner}.{self.info.klass}.{parts[-1]}"
                    )
                    self.info.calls_attr.add(parts[-1])
                elif head in self.imports and head not in self.locals:
                    dotted = ".".join([self.imports[head]] + parts[1:])
                    self.info.calls_qual.add(dotted)
                elif head in self.module_bindings and head not in self.locals:
                    self.info.calls_qual.add(
                        ".".join([self.info.module.name] + parts)
                    )
                else:
                    self.info.calls_attr.add(parts[-1])
            else:
                attr = func.attr
                self.info.calls_attr.add(attr)
        # Mutating method call on shared state, in any expression
        # position: GLOBAL.append(x), y = CACHE.pop(k), Cls.reg.update().
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            kind = self._base_kind(func.value)
            if kind is not None:
                rule = "RS202" if kind[0] == "class" else "RS201"
                shared = (
                    "class-level attribute"
                    if kind[0] == "class"
                    else "module-level object"
                )
                self._record(
                    rule,
                    node,
                    f"in-place mutation {kind[1]}.{func.attr}(...) of a "
                    f"{shared}",
                    key=f"mutation:{kind[1]}.{func.attr}",
                )
        self.generic_visit(node)

    # -- write collection -----------------------------------------------
    def _record(self, rule: str, node: ast.AST, detail: str, key: str) -> None:
        self.info.writes.append(
            _Write(
                rule=rule,
                line=node.lineno,
                col=node.col_offset + 1,
                detail=detail,
                key=key,
            )
        )

    def _base_kind(self, base: ast.AST) -> Optional[tuple[str, str]]:
        """Classify the base object of an attribute/subscript write.

        Returns ``(kind, name)`` with kind one of ``"class"`` (a class
        object — project class or ``cls``/``type(self)``) or
        ``"module-global"`` (module-level binding or imported module
        attribute), or None when the base is local/instance state.
        """
        # type(self).attr / self.__class__.attr
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name):
            if base.func.id == "type" and len(base.args) == 1:
                arg = base.args[0]
                if isinstance(arg, ast.Name) and arg.id == "self":
                    return ("class", "type(self)")
        parts = attr_chain(base)
        if parts is None:
            return None
        head = parts[0]
        if head == "self":
            if len(parts) >= 2 and parts[1] == "__class__":
                return ("class", "self.__class__")
            return None  # instance state: worker-owned
        if head == "cls":
            return ("class", "cls")
        if head in self.locals and head not in self.globals_decl:
            return None
        if head in self.imports:
            dotted = ".".join([self.imports[head]] + parts[1:])
            if dotted in self.all_classes:
                return ("class", dotted)
            return ("module-global", dotted)
        if head in self.module_bindings:
            mod = self.info.module.name
            if f"{mod}.{head}" in self.module_classes or head in {
                c.rsplit(".", 1)[1] for c in self.module_classes
            }:
                return ("class", head)
            return ("module-global", f"{mod}." + ".".join(parts))
        return None

    def _check_target(self, target: ast.AST, node: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_decl:
                self._record(
                    "RS201",
                    node,
                    f"assignment to module global {target.id!r} (declared "
                    "global)",
                    key=f"global-write:{target.id}",
                )
            elif target.id in self.nonlocals_decl:
                self._record(
                    "RS203",
                    node,
                    f"assignment to captured closure variable {target.id!r} "
                    "(declared nonlocal)",
                    key=f"nonlocal-write:{target.id}",
                )
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            kind = self._base_kind(target.value)
            if kind is None:
                return
            what = "attribute" if isinstance(target, ast.Attribute) else "item"
            label = (
                target.attr
                if isinstance(target, ast.Attribute)
                else "[...]"
            )
            if kind[0] == "class":
                self._record(
                    "RS202",
                    node,
                    f"write to class-level {what} {kind[1]}.{label} — "
                    "shared across all instances and diverges per worker "
                    "process",
                    key=f"class-write:{kind[1]}.{label}",
                )
            else:
                self._record(
                    "RS201",
                    node,
                    f"write to module-level state {kind[1]}.{label} — "
                    "each worker process mutates its own copy",
                    key=f"module-write:{kind[1]}.{label}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

def _touches_shm_buf(node: ast.AST) -> bool:
    """Does this expression read through a ``.buf`` attribute?

    ``SharedMemory`` exposes its mapping as ``.buf``; any expression
    built on one (``seg.buf``, ``self._shm.buf[64:]``,
    ``memoryview(ring.buf)``) is segment memory.
    """
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "buf"
        for sub in ast.walk(node)
    )


class _ShmWriteScanner(ast.NodeVisitor):
    """RS204: raw segment-byte writes in a non-protocol module.

    Flags subscript stores whose base touches ``.buf`` (plain,
    augmented and annotated assignment) and ``pack_into`` calls given a
    ``.buf``-derived buffer argument. Reads are fine — consumers are
    expected to build ``np.frombuffer`` views — only stores bypass the
    seqno/generation/crc discipline.
    """

    def __init__(self, module: Module):
        self.module = module
        self.findings: list[Finding] = []
        self._symbol: list[str] = []

    def _visit_scope(self, node) -> None:
        self._symbol.append(node.name)
        self.generic_visit(node)
        self._symbol.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    def _record(self, node: ast.AST, detail: str, key: str) -> None:
        self.findings.append(
            Finding(
                rule="RS204",
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"{detail} — shared-memory frame/control layout is "
                    "owned by the IPC protocol modules (docs/IPC.md); "
                    "raw segment writes elsewhere bypass the "
                    "seqno/generation/crc discipline"
                ),
                symbol=".".join(self._symbol),
                key=key,
            )
        )

    def _check_store(self, target: ast.AST, node: ast.stmt) -> None:
        if isinstance(target, ast.Subscript) and _touches_shm_buf(
            target.value
        ):
            self._record(
                node,
                "subscript write into a shared-memory buffer (.buf)",
                key="shm-write:subscript",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pack_into"
            and any(_touches_shm_buf(arg) for arg in node.args)
        ):
            self._record(
                node,
                "struct pack_into a shared-memory buffer (.buf)",
                key="shm-write:pack_into",
            )
        self.generic_visit(node)


class ShardSafetyPass:
    """RS201-RS203 over worker-reachable code; RS204 everywhere else."""

    name = "shard-safety"
    scope = "project"
    rule_ids = ("RS201", "RS202", "RS203", "RS204")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        funcs: dict[str, _FuncInfo] = {}
        classes: dict[str, ast.ClassDef] = {}
        for module in project.modules:
            if module.name.split(".")[0] != config.package:
                continue
            _Indexer(module, funcs, classes).visit(module.tree)

        methods_by_name: dict[str, list[str]] = {}
        for qual, info in funcs.items():
            if info.klass is not None:
                methods_by_name.setdefault(
                    qual.rsplit(".", 1)[1], []
                ).append(qual)

        for module in project.modules:
            if module.name.split(".")[0] != config.package:
                continue
            imports = import_table(module)
            module_bindings = collect_bindings(module.tree)
            module_classes = {
                q for q in classes if q.rsplit(".", 1)[0] == module.name
            }
            for info in funcs.values():
                if info.module is module:
                    _BodyAnalyzer(
                        info,
                        imports,
                        module_bindings,
                        module_classes,
                        set(classes),
                    ).run()

        edges = self._build_edges(funcs, classes, methods_by_name)
        reachable, via = self._reach(config.worker_entry_points, edges)

        findings: list[Finding] = []
        for qual in sorted(reachable):
            info = funcs.get(qual)
            if info is None:
                continue
            chain = " -> ".join(
                part.rsplit(".", 1)[1] if "." in part else part
                for part in via[qual]
            )
            for write in info.writes:
                findings.append(
                    Finding(
                        rule=write.rule,
                        path=info.module.rel,
                        line=write.line,
                        col=write.col,
                        message=(
                            f"{write.detail}; reachable from shard-worker "
                            f"entry point via {chain}"
                        ),
                        symbol=qual[len(info.module.name) + 1 :],
                        key=write.key,
                    )
                )

        protocol = tuple(config.shm_protocol_modules)
        for module in project.modules:
            if module.name.split(".")[0] != config.package:
                continue
            if any(
                module.name == p or module.name.startswith(p + ".")
                for p in protocol
            ):
                continue
            scanner = _ShmWriteScanner(module)
            scanner.visit(module.tree)
            findings.extend(scanner.findings)
        return findings

    def _build_edges(
        self,
        funcs: dict[str, _FuncInfo],
        classes: dict[str, ast.ClassDef],
        methods_by_name: dict[str, list[str]],
    ) -> dict[str, set[str]]:
        edges: dict[str, set[str]] = {q: set() for q in funcs}
        for qual, info in funcs.items():
            out = edges[qual]
            out |= info.children  # nested defs belong to their parent
            for target in info.calls_qual:
                if target in funcs:
                    out.add(target)
                elif target in classes:
                    init = f"{target}.__init__"
                    if init in funcs:
                        out.add(init)
                else:
                    # Attribute tail may be a method of a resolved class:
                    # repro.x.Cls.method via `mod.Cls.method(...)`.
                    head, _, tail = target.rpartition(".")
                    if head in classes and f"{head}.{tail}" in funcs:
                        out.add(f"{head}.{tail}")
            for attr in info.calls_attr:
                if attr in FALLBACK_DENYLIST:
                    continue
                for candidate in methods_by_name.get(attr, ()):
                    out.add(candidate)
        return edges

    def _reach(
        self, entries: tuple[str, ...], edges: dict[str, set[str]]
    ) -> tuple[set[str], dict[str, tuple[str, ...]]]:
        """BFS; returns reachable quals and the chain that reached each."""
        via: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for entry in entries:
            if entry in edges and entry not in via:
                via[entry] = (entry,)
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for nxt in sorted(edges.get(current, ())):
                if nxt not in via:
                    via[nxt] = via[current] + (nxt,)
                    queue.append(nxt)
        return set(via), via
