"""Tests for BGP communities and blackhole detection."""

import pytest

from repro.bgp.community import (
    BLACKHOLE,
    Community,
    has_blackhole_signal,
    is_blackhole_community,
)


class TestCommunity:
    def test_parse(self):
        assert Community.parse("65535:666") == BLACKHOLE

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            Community.parse("65535-666")

    def test_rejects_out_of_range_asn(self):
        with pytest.raises(ValueError):
            Community(asn=70000, value=1)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            Community(asn=1, value=70000)

    def test_str_roundtrip(self):
        c = Community(asn=64512, value=100)
        assert Community.parse(str(c)) == c


class TestBlackholeDetection:
    def test_rfc7999_is_blackhole(self):
        assert is_blackhole_community(BLACKHOLE)

    def test_operator_convention_666(self):
        assert is_blackhole_community(Community(asn=64512, value=666))

    def test_ordinary_community_is_not(self):
        assert not is_blackhole_community(Community(asn=64512, value=100))

    def test_signal_in_set(self):
        communities = {Community(1, 2), Community(64512, 666)}
        assert has_blackhole_signal(communities)

    def test_no_signal_in_set(self):
        assert not has_blackhole_signal({Community(1, 2)})

    def test_empty_set(self):
        assert not has_blackhole_signal(set())
