"""Tests for the balancing procedure (§3, Fig. 3b)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling.balancer import balance
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


def flows_for_bin(bin_id, dst_counts, blackhole):
    """Build flows in ``bin_id``: {dst_ip: n_flows}."""
    records = []
    base_time = bin_id * 60
    for dst, count in dst_counts.items():
        for k in range(count):
            records.append(
                make_flow(
                    time=base_time + (k % 60),
                    dst_ip=dst,
                    src_ip=1000 + dst + k,
                    blackhole=blackhole,
                )
            )
    return records


class TestBalance:
    def test_empty_input(self, rng):
        result = balance(FlowDataset.empty(), rng)
        assert len(result.flows) == 0
        assert result.report.reduction == 0.0

    def test_no_blackholes_discards_everything(self, rng):
        flows = FlowDataset.from_records(flows_for_bin(0, {1: 5, 2: 5}, blackhole=False))
        result = balance(flows, rng)
        assert len(result.flows) == 0
        assert result.report.flows_before == 10

    def test_keeps_all_blackhole_flows(self, rng):
        records = flows_for_bin(0, {1: 8}, blackhole=True) + flows_for_bin(
            0, {2: 20, 3: 20}, blackhole=False
        )
        result = balance(FlowDataset.from_records(records), rng)
        kept_blackhole = int(result.flows.blackhole.sum())
        assert kept_blackhole == 8

    def test_benign_matched_to_blackhole(self, rng):
        records = flows_for_bin(0, {1: 10}, blackhole=True) + flows_for_bin(
            0, {2: 30, 3: 30}, blackhole=False
        )
        result = balance(FlowDataset.from_records(records), rng)
        benign_kept = int((~result.flows.blackhole).sum())
        assert benign_kept == 10  # equal flows
        # Equal number of distinct benign IPs (here: 1 blackholed IP).
        benign_ips = np.unique(result.flows.select(~result.flows.blackhole).dst_ip)
        assert benign_ips.shape[0] == 1

    def test_share_near_half_with_ample_benign(self, rng):
        records = []
        for b in range(5):
            records += flows_for_bin(b, {1: 10, 2: 6}, blackhole=True)
            records += flows_for_bin(b, {10: 30, 20: 30, 30: 30}, blackhole=False)
        result = balance(FlowDataset.from_records(records), rng)
        assert abs(result.blackhole_share - 0.5) < 0.05

    def test_bins_without_blackhole_dropped(self, rng):
        records = flows_for_bin(0, {1: 5}, blackhole=True) + flows_for_bin(
            0, {9: 20}, blackhole=False
        )
        records += flows_for_bin(1, {9: 50}, blackhole=False)  # bin 1: no blackhole
        result = balance(FlowDataset.from_records(records), rng)
        assert set(np.unique(result.flows.time_bin())) == {0}

    def test_report_per_bin_entries(self, rng):
        records = []
        for b in (0, 2, 5):
            records += flows_for_bin(b, {1: 5}, blackhole=True)
            records += flows_for_bin(b, {9: 20}, blackhole=False)
        result = balance(FlowDataset.from_records(records), rng)
        assert list(result.report.bins) == [0, 2, 5]
        assert (result.report.blackhole_flows == 5).all()

    def test_reduction_accounts_discards(self, rng):
        records = flows_for_bin(0, {1: 10}, blackhole=True) + flows_for_bin(
            0, {9: 100}, blackhole=False
        )
        result = balance(FlowDataset.from_records(records), rng)
        assert result.report.flows_before == 110
        assert result.report.flows_after == len(result.flows)
        assert result.report.reduction > 0.7

    def test_flows_per_ip_correlated(self, rng):
        records = []
        for b in range(30):
            n = 3 + (b % 7)
            records += flows_for_bin(b, {1: n, 2: n + 2}, blackhole=True)
            records += flows_for_bin(b, {10: 40, 20: 40, 30: 40}, blackhole=False)
        result = balance(FlowDataset.from_records(records), rng)
        assert result.report.pearson_r() > 0.5

    def test_shortfall_redistribution(self, rng):
        """When no benign IP can fill a big quota, totals still balance
        through redistribution across picked IPs."""
        records = flows_for_bin(0, {1: 40}, blackhole=True) + flows_for_bin(
            0, {10: 25, 20: 25}, blackhole=False
        )
        result = balance(FlowDataset.from_records(records), rng)
        benign_kept = int((~result.flows.blackhole).sum())
        # One blackholed IP -> one picked benign IP (25 flows) plus
        # redistribution cannot add more IPs, so totals stay at supply.
        assert benign_kept == 25

    def test_custom_bin_width(self, rng):
        records = flows_for_bin(0, {1: 5}, blackhole=True) + flows_for_bin(
            0, {9: 10}, blackhole=False
        )
        result = balance(FlowDataset.from_records(records), rng, bin_seconds=30)
        assert len(result.flows) > 0


@settings(max_examples=20, deadline=None)
@given(
    n_bh=st.integers(min_value=1, max_value=30),
    n_benign_ips=st.integers(min_value=1, max_value=5),
    benign_per_ip=st.integers(min_value=1, max_value=50),
)
def test_balance_invariants(n_bh, n_benign_ips, benign_per_ip):
    """Blackhole flows always all kept; benign never exceeds blackhole."""
    records = flows_for_bin(0, {1: n_bh}, blackhole=True)
    records += flows_for_bin(
        0, {100 + i: benign_per_ip for i in range(n_benign_ips)}, blackhole=False
    )
    result = balance(FlowDataset.from_records(records), np.random.default_rng(0))
    kept_bh = int(result.flows.blackhole.sum())
    kept_benign = int((~result.flows.blackhole).sum())
    assert kept_bh == n_bh
    assert kept_benign <= n_bh
    assert kept_benign <= n_benign_ips * benign_per_ip
