"""Shared experiment infrastructure.

Every experiment module exposes ``run(scale=...) -> ExperimentResult``.
Results render as plain-text tables (what the paper reports as tables)
or named series (what the paper plots as figures), so the CLI, the
benchmarks and EXPERIMENTS.md all consume the same objects.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

#: Experiment scale knob: "small" for CI-speed runs, "paper" for the
#: full-size runs recorded in EXPERIMENTS.md.
SCALES = ("small", "paper")


def cache_dir() -> Path:
    """Directory for cached corpora (override with $REPRO_CACHE_DIR)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro-ixp-scrubber"


def cached(key_parts: Sequence[object], builder: Callable[[], Any]) -> Any:
    """Build-or-load an expensive artifact keyed by ``key_parts``.

    The cache key includes a schema version constant; bump
    ``_CACHE_VERSION`` when generator semantics change.
    """
    key = hashlib.sha1(repr((_CACHE_VERSION, *key_parts)).encode()).hexdigest()[:16]
    path = cache_dir() / f"{key}.pkl"
    if path.exists():
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
    artifact = builder()
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(artifact, handle)
    tmp.replace(path)
    return artifact


_CACHE_VERSION = 18


@dataclass
class ExperimentResult:
    """Uniform container for an experiment's outputs.

    ``rows`` is a list of dicts (table form); ``series`` maps series
    names to (x, y) sequences (figure form); ``notes`` records headline
    numbers for EXPERIMENTS.md.
    """

    experiment: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    series: dict[str, tuple[Sequence[float], Sequence[float]]] = field(
        default_factory=dict
    )
    notes: dict[str, Any] = field(default_factory=dict)

    def format_table(self, float_format: str = "{:.4f}") -> str:
        """Render ``rows`` as an aligned plain-text table."""
        if not self.rows:
            return f"[{self.experiment}] (no rows)"
        columns = list(self.rows[0])
        rendered: list[list[str]] = [columns]
        for row in self.rows:
            rendered.append(
                [
                    float_format.format(v) if isinstance(v, float) else str(v)
                    for v in (row.get(c, "") for c in columns)
                ]
            )
        widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
        lines = []
        for k, row in enumerate(rendered):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if k == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def summary(self) -> str:
        parts = [f"== {self.experiment} =="]
        if self.rows:
            parts.append(self.format_table())
        for name, (x, y) in self.series.items():
            parts.append(f"series {name}: {len(x)} points")
        if self.notes:
            parts.append("notes: " + ", ".join(f"{k}={v}" for k, v in sorted(self.notes.items())))
        return "\n".join(parts)


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale
