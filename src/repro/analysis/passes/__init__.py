"""Pass registry: every project-contract pass the runner executes."""

from __future__ import annotations

from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.durability import DurabilityPass
from repro.analysis.passes.layering import LayeringPass
from repro.analysis.passes.obs_names import ObsNamesPass
from repro.analysis.passes.shard_safety import ShardSafetyPass

__all__ = ["ALL_PASSES", "DeterminismPass", "DurabilityPass", "LayeringPass",
           "ObsNamesPass", "ShardSafetyPass"]

#: Instantiable passes in execution order. Each exposes ``name``,
#: ``rule_ids`` and ``run(project, config) -> list[Finding]``.
ALL_PASSES = (
    DeterminismPass,
    ShardSafetyPass,
    LayeringPass,
    ObsNamesPass,
    DurabilityPass,
)
