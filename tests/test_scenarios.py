"""Scenario conductor: workload, oracle, registry and scorecard tests.

Three layers, matching the package:

* :class:`TestPoissonWorkloadManager` — the open-loop workload contract
  (start/collect/stop, determinism, the ``scale`` knob);
* :class:`TestOracle` — scoring arithmetic on hand-built verdict
  streams where every metric value is computable by eye;
* the conductor tests — golden scorecards with a 1e-9 float gate, and
  the bit-identical-scorecard property across reruns, shard counts,
  backends and injected faults (the acceptance criterion of the
  scenario subsystem).

Process-backend and whole-catalogue runs carry ``@pytest.mark.slow``
and are excluded from tier-1 (``addopts = -m "not slow"``); the CI
``scenario-soak`` job runs them with ``-m slow``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from tests.gen_golden import SCENARIO_CASES, scenario_path
from repro.core.resilience import FaultPlan
from repro.core.scrubber import TargetVerdict
from repro.scenarios import (
    Check,
    GroundTruth,
    InjectedAttack,
    PoissonWorkloadManager,
    get_scenario,
    run_scenario,
    scenario_names,
    score_verdicts,
    scorecard_json,
)
from repro.scenarios.oracle import evaluate_checks

# ----------------------------------------------------------------------
# Workload manager.
# ----------------------------------------------------------------------


class TestPoissonWorkloadManager:
    def test_same_seed_same_flows(self):
        streams = []
        for _ in range(2):
            manager = PoissonWorkloadManager(seed=5, active_users=80.0,
                                             rate_per_user=0.5)
            manager.start()
            streams.append(manager.collect(16))
            manager.stop()
        a, b = streams
        assert len(a) == len(b)
        for column in ("time", "src_ip", "dst_ip", "bytes"):
            assert np.array_equal(getattr(a, column), getattr(b, column))

    def test_scale_multiplies_offered_load(self):
        sizes = {}
        for scale in (0.5, 4.0):
            manager = PoissonWorkloadManager(seed=5, active_users=120.0,
                                             rate_per_user=0.5, scale=scale)
            manager.start()
            sizes[scale] = len(manager.collect(24))
            manager.stop()
        # Poisson noise is far smaller than the 8x scale ratio.
        assert sizes[4.0] > 4 * sizes[0.5]

    def test_flows_land_in_the_collected_bins_in_order(self):
        manager = PoissonWorkloadManager(seed=1, active_users=60.0,
                                         rate_per_user=0.4)
        manager.start(start_bin=10)
        flows = manager.collect(8)
        manager.stop()
        bins = flows.time // 60
        assert bins.min() >= 10 and bins.max() < 18
        assert (np.diff(bins) >= 0).all()  # emitted bin by bin

    def test_collect_requires_start(self):
        manager = PoissonWorkloadManager(seed=1, active_users=10.0,
                                         rate_per_user=0.5)
        with pytest.raises(RuntimeError):
            manager.collect(4)
        manager.start()
        manager.stop()
        with pytest.raises(RuntimeError):
            manager.collect(4)

    def test_recent_entries_is_a_suffix(self):
        manager = PoissonWorkloadManager(seed=3, active_users=50.0,
                                         rate_per_user=0.5)
        manager.start()
        manager.collect(12)
        recent = manager.recent_entries(4)
        manager.stop()
        assert (recent.time // 60 >= 8).all()

    def test_targets_stay_in_declared_block(self):
        manager = PoissonWorkloadManager(seed=2, active_users=40.0,
                                         rate_per_user=0.5, n_targets=32)
        manager.start()
        flows = manager.collect(4)
        manager.stop()
        assert ((flows.dst_ip & 0xFFFF0000) == 0x0AC80000).all()


# ----------------------------------------------------------------------
# Oracle scoring.
# ----------------------------------------------------------------------


def _verdict(bin_, target, is_ddos, score=None):
    if score is None:
        score = 0.9 if is_ddos else 0.1
    return TargetVerdict(bin=bin_, target_ip=target, is_ddos=is_ddos,
                         score=score, matched_rules=())


class TestOracle:
    VICTIM = 0x0A000001
    BENIGN = (0x0B000001, 0x0B000002, 0x0B000003)

    def _truth(self, **attack_kwargs):
        defaults = dict(attack_id="a", victims=(self.VICTIM,),
                        start_bin=10, end_bin=20, vectors=("DNS",))
        defaults.update(attack_kwargs)
        return GroundTruth(attacks=(InjectedAttack(**defaults),),
                           benign_targets=self.BENIGN, horizon_bin=30)

    def test_latency_counts_from_attack_start(self):
        verdicts = [_verdict(13, self.VICTIM, True),
                    _verdict(14, self.VICTIM, True)]
        metrics, details = score_verdicts(verdicts, self._truth())
        assert metrics["attacks_detected"] == 1
        assert metrics["detection_latency_mean_bins"] == 3
        assert metrics["detection_latency_max_bins"] == 3
        assert details[0]["first_detection_bin"] == 13

    def test_detectable_from_moves_the_clock(self):
        verdicts = [_verdict(16, self.VICTIM, True)]
        metrics, _ = score_verdicts(
            verdicts, self._truth(detectable_from=15)
        )
        assert metrics["detection_latency_max_bins"] == 1

    def test_missed_attack_has_no_latency(self):
        metrics, details = score_verdicts([], self._truth())
        assert metrics["detection_recall"] == 0.0
        assert metrics["detection_latency_mean_bins"] is None
        assert details[0]["first_detection_bin"] is None

    def test_localization_and_collateral_arithmetic(self):
        verdicts = [
            _verdict(12, self.VICTIM, True),
            _verdict(12, self.BENIGN[0], True),   # collateral
            _verdict(12, self.BENIGN[1], False),
            _verdict(25, self.VICTIM, False),
        ]
        metrics, _ = score_verdicts(verdicts, self._truth())
        assert metrics["localization_precision"] == 0.5   # 1 of 2 flagged
        assert metrics["localization_recall"] == 1.0
        assert metrics["benign_targets_scored"] == 2
        assert metrics["benign_targets_flagged"] == 1
        assert metrics["benign_collateral_rate"] == 0.5
        assert metrics["false_positive_verdicts"] == 1

    def test_flag_after_the_window_is_not_a_detection(self):
        # The victim flagged only after the attack ended: no detection,
        # but also no collateral — the target genuinely was attacked.
        verdicts = [_verdict(25, self.VICTIM, True)]
        metrics, details = score_verdicts(verdicts, self._truth())
        assert metrics["attacks_detected"] == 0
        assert details[0]["latency_bins"] is None
        assert metrics["localization_precision"] == 1.0
        assert metrics["false_positive_verdicts"] == 0

    def test_check_operators(self):
        values = {"x": 1.5, "missing_is_fail": None}
        results, ok = evaluate_checks(
            (Check("ge", "x", ">=", 1.0), Check("le", "x", "<=", 2.0),
             Check("eq", "x", "==", 1.5)),
            values,
        )
        assert ok and all(r["passed"] for r in results)
        results, ok = evaluate_checks(
            (Check("none", "missing_is_fail", ">=", 0.0),
             Check("absent", "no_such_metric", "<=", 1.0)),
            values,
        )
        assert not ok and not any(r["passed"] for r in results)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


class TestRegistry:
    def test_catalogue_has_the_promised_scenarios(self):
        names = scenario_names()
        assert len(names) >= 6
        for required in ("flash_crowd", "volumetric_flood", "carpet_bombing",
                         "retrain_storm", "blackhole_churn", "slow_drift",
                         "novel_vector", "collateral_spike",
                         "coordinator_crash"):
            assert required in names

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="carpet_bombing"):
            get_scenario("no_such_scenario")

    def test_specs_build_deterministically(self):
        for name in ("flash_crowd", "blackhole_churn"):
            build = get_scenario(name).build
            a, b = build(3, 0.25), build(3, 0.25)
            assert len(a.flows) == len(b.flows)
            assert np.array_equal(a.flows.dst_ip, b.flows.dst_ip)
            assert a.truth == b.truth
            assert [u.prefix for u in a.updates] == [u.prefix for u in b.updates]


# ----------------------------------------------------------------------
# Conductor: goldens and the invariance property.
# ----------------------------------------------------------------------


def _assert_scorecards_match(actual: dict, golden: dict, context: str,
                             path: str = "$") -> None:
    """Recursive compare: floats gated at 1e-9, all else exact."""
    if isinstance(golden, float) and isinstance(actual, (int, float)):
        assert actual == pytest.approx(golden, abs=1e-9), (
            f"{context}: {path} drifted: {actual!r} != {golden!r}"
        )
    elif isinstance(golden, dict):
        assert isinstance(actual, dict) and sorted(actual) == sorted(golden), (
            f"{context}: {path} keys changed"
        )
        for key in golden:
            _assert_scorecards_match(actual[key], golden[key], context,
                                     f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list) and len(actual) == len(golden), (
            f"{context}: {path} length changed"
        )
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_scorecards_match(a, g, context, f"{path}[{i}]")
    else:
        assert actual == golden, (
            f"{context}: {path} changed: {actual!r} != {golden!r}"
        )


@pytest.mark.parametrize("name,seed,scale", SCENARIO_CASES)
def test_golden_scorecards(name, seed, scale):
    golden = json.loads(scenario_path(name, seed, scale).read_text())
    result = run_scenario(name, seed=seed, scale=scale)
    _assert_scorecards_match(result.scorecard, golden,
                             f"{name} seed={seed} scale={scale}")
    assert result.scorecard["passed"], f"golden scenario {name} fails its oracle"


def test_scorecard_invariant_across_reruns_and_shards():
    runs = {
        "rerun": dict(),
        "4 shards": dict(shards=4),
    }
    base = scorecard_json(
        run_scenario("carpet_bombing", seed=7, scale=0.25).scorecard
    )
    for label, kwargs in runs.items():
        other = scorecard_json(
            run_scenario("carpet_bombing", seed=7, scale=0.25, **kwargs).scorecard
        )
        assert other == base, f"scorecard not bit-identical under {label}"


@pytest.mark.slow
@pytest.mark.parametrize("shards,backend", [(2, "process"), (2, "supervised")])
def test_scorecard_invariant_across_backends(shards, backend):
    base = scorecard_json(
        run_scenario("carpet_bombing", seed=7, scale=0.25).scorecard
    )
    other = scorecard_json(
        run_scenario("carpet_bombing", seed=7, scale=0.25,
                     shards=shards, backend=backend).scorecard
    )
    assert other == base, f"scorecard drifted on {backend} x{shards}"


@pytest.mark.slow
def test_fault_plan_is_score_invisible(monkeypatch):
    """A seeded worker-crash plan must not change a single scorecard bit."""
    from repro.core.resilience import FAULTS_ENV

    monkeypatch.setenv(FAULTS_ENV, "crash@0:batch=1")
    base = scorecard_json(
        run_scenario("volumetric_flood", seed=11, scale=0.25).scorecard
    )
    faulted = scorecard_json(
        run_scenario(
            "volumetric_flood", seed=11, scale=0.25, shards=2,
            backend="supervised",
            backend_options={"fault_plan": FaultPlan.from_env()},
        ).scorecard
    )
    assert faulted == base


@pytest.mark.slow
def test_whole_catalogue_passes_its_oracles():
    failed = []
    for name in scenario_names():
        result = run_scenario(name, seed=7, scale=0.25)
        if not result.scorecard["passed"]:
            bad = [c["name"] for c in result.scorecard["checks"]
                   if not c["passed"]]
            failed.append(f"{name}: {bad}")
    assert not failed, "scenarios failed their oracles: " + "; ".join(failed)


def test_scorecard_is_json_safe_and_versioned():
    result = run_scenario("volumetric_flood", seed=11, scale=0.25)
    rendered = scorecard_json(result.scorecard)
    parsed = json.loads(rendered)
    assert parsed["schema_version"] == 1
    assert parsed["metrics"]["detection_recall"] > 0
    assert set(parsed) >= {"scenario", "seed", "scale", "stream", "truth",
                           "metrics", "attacks", "checks", "passed"}
    # NaN/Infinity never reach the scorecard (allow_nan=False would
    # already have thrown while rendering).
    assert "NaN" not in rendered and "Infinity" not in rendered
