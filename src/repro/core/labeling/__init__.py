"""Step 0: crowdsourced labeling and dataset balancing (paper §3)."""

from repro.core.labeling.balancer import BalanceReport, BalancedDataset, balance
from repro.core.labeling.matcher import label_capture

__all__ = ["BalanceReport", "BalancedDataset", "balance", "label_capture"]
