"""Seeded operational scenarios with oracles (``repro.scenarios``).

The paper's claim is operational — catch volumetric attacks at scale
without dropping benign traffic — and this package turns it into
continuously checked behaviour: a registry of named, seeded scenarios
(:mod:`repro.scenarios.catalog`), each composing an open-loop Poisson
workload (:mod:`repro.scenarios.workload`) and injected attacks into a
stream driven through a real :class:`ShardedStreamingScrubber`, scored
by an oracle that knows the injected ground truth
(:mod:`repro.scenarios.oracle`) into a JSON scorecard
(:mod:`repro.scenarios.conductor`).

Quick tour::

    from repro import scenarios

    result = scenarios.run_scenario("carpet_bombing", seed=7, scale=0.5)
    print(scenarios.scorecard_json(result.scorecard))

With exact aggregation the scorecard is bit-identical across reruns,
shard counts and backends; ``repro scenarios list/run`` is the CLI
front end, ``docs/TESTING.md`` the testing guide.
"""

from repro.scenarios import catalog  # noqa: F401  (registers the catalogue)
from repro.scenarios.conductor import (
    SCORECARD_SCHEMA_VERSION,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    all_scenarios,
    bootstrap_scrubber,
    get_scenario,
    register,
    run_scenario,
    scenario_names,
    scorecard_json,
)
from repro.scenarios.oracle import Check, GroundTruth, InjectedAttack, score_verdicts
from repro.scenarios.workload import PoissonWorkloadManager, WorkloadManager

__all__ = [
    "SCORECARD_SCHEMA_VERSION",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "Check",
    "GroundTruth",
    "InjectedAttack",
    "PoissonWorkloadManager",
    "WorkloadManager",
    "all_scenarios",
    "bootstrap_scrubber",
    "get_scenario",
    "register",
    "run_scenario",
    "scenario_names",
    "score_verdicts",
    "scorecard_json",
]
