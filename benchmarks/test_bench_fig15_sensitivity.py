"""E-F15: rule-minimisation sensitivity over the Lc/Ls grid (Fig. 15).

Paper shape: higher loss thresholds remove more rules, but pushing
beyond Lc = Ls = 0.01 yields little extra reduction — the basis for
choosing 0.01/0.01.
"""

from repro.experiments import fig15_sensitivity


def test_fig15_sensitivity(run_experiment):
    result = run_experiment(fig15_sensitivity)
    print()
    print(result.summary())

    counts = {(row["Lc"], row["Ls"]): row["remaining_rules"] for row in result.rows}

    # Monotone: higher thresholds never keep more rules.
    grid = sorted({lc for lc, _ in counts})
    for i, lc in enumerate(grid):
        for j, ls in enumerate(grid):
            if i + 1 < len(grid):
                assert counts[(grid[i + 1], ls)] <= counts[(lc, ls)]
            if j + 1 < len(grid):
                assert counts[(lc, grid[j + 1])] <= counts[(lc, ls)]

    # All settings reduce the input rule set substantially.
    assert max(counts.values()) < result.notes["input_rules"]

    # Diminishing returns beyond 0.01 (upper-right quadrant flattens).
    strictest_saving = counts[(grid[0], grid[0])] - counts[(0.01, 0.01)]
    beyond_saving = counts[(0.01, 0.01)] - counts[(0.1, 0.1)]
    assert beyond_saving <= max(strictest_saving, 5)
