"""Tests for Algorithm 1 (rule-set minimisation)."""

import pytest

from repro.core.rules.items import LABEL_BLACKHOLE
from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import AssociationRule


def rule(items: dict, confidence: float, support: float) -> AssociationRule:
    return AssociationRule(
        antecedent=frozenset(items.items()),
        consequent=LABEL_BLACKHOLE,
        confidence=confidence,
        support=support,
        joint_support=confidence * support,
    )


class TestMinimize:
    def test_removes_redundant_general_rule(self):
        general = rule({"a": 1}, confidence=0.90, support=0.10)
        specific = rule({"a": 1, "b": 2}, confidence=0.895, support=0.095)
        remaining = minimize_rules([general, specific], 0.01, 0.01)
        assert remaining == [specific]

    def test_keeps_general_rule_with_confidence_advantage(self):
        general = rule({"a": 1}, confidence=0.95, support=0.10)
        specific = rule({"a": 1, "b": 2}, confidence=0.85, support=0.09)
        remaining = minimize_rules([general, specific], 0.01, 0.01)
        assert set(remaining) == {general, specific}

    def test_keeps_general_rule_with_support_advantage(self):
        general = rule({"a": 1}, confidence=0.90, support=0.30)
        specific = rule({"a": 1, "b": 2}, confidence=0.90, support=0.05)
        remaining = minimize_rules([general, specific], 0.01, 0.01)
        assert set(remaining) == {general, specific}

    def test_unrelated_rules_untouched(self):
        r1 = rule({"a": 1}, confidence=0.9, support=0.1)
        r2 = rule({"b": 2}, confidence=0.9, support=0.1)
        assert set(minimize_rules([r1, r2], 0.01, 0.01)) == {r1, r2}

    def test_chain_collapses_to_most_specific(self):
        r1 = rule({"a": 1}, confidence=0.9, support=0.10)
        r2 = rule({"a": 1, "b": 2}, confidence=0.9, support=0.099)
        r3 = rule({"a": 1, "b": 2, "c": 3}, confidence=0.9, support=0.098)
        remaining = minimize_rules([r1, r2, r3], 0.01, 0.01)
        assert remaining == [r3]

    def test_empty_input(self):
        assert minimize_rules([], 0.01, 0.01) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            minimize_rules([], -0.1, 0.01)

    def test_higher_thresholds_remove_no_fewer(self):
        rules = [
            rule({"a": 1}, confidence=0.93, support=0.12),
            rule({"a": 1, "b": 2}, confidence=0.90, support=0.08),
            rule({"a": 1, "c": 3}, confidence=0.92, support=0.05),
            rule({"d": 4}, confidence=0.99, support=0.30),
        ]
        loose = minimize_rules(rules, 0.1, 0.1)
        strict = minimize_rules(rules, 0.001, 0.001)
        assert len(loose) <= len(strict)

    def test_fixed_point(self):
        rules = [
            rule({"a": 1}, confidence=0.9, support=0.1),
            rule({"a": 1, "b": 2}, confidence=0.9, support=0.099),
        ]
        once = minimize_rules(rules, 0.01, 0.01)
        twice = minimize_rules(once, 0.01, 0.01)
        assert once == twice
