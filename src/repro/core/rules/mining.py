"""Association rule generation on top of FP-Growth (paper §5.1.1).

Rules have the form ``A -> C`` with a single-item consequent. The two
ARM quality metrics of the paper are attached to each rule:

* antecedent support ``s`` — share of the dataset matching ``A``;
* confidence ``c`` — share of ``A``-matching transactions that also
  contain ``C``.

Rule generation considers *all* single-item consequents (like an
off-the-shelf ARM toolchain would); the first minimisation step then
keeps only rules whose consequent is the blackhole class item,
reproducing the paper's 7859 -> 1469 -> 367 funnel shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.obs import names as metric_names
from repro.core.rules.items import (
    Item,
    ItemEncoder,
    LABEL_BLACKHOLE,
    deduplicate,
)
from repro.core.rules.itemsets import fp_growth, total_weight
from repro.netflow.dataset import FlowDataset


@dataclass(frozen=True)
class AssociationRule:
    """One mined rule ``antecedent -> consequent``."""

    antecedent: frozenset[Item]
    consequent: Item
    confidence: float
    #: Antecedent support as a share of the dataset.
    support: float
    #: Joint support of antecedent + consequent (share of the dataset).
    joint_support: float

    def __post_init__(self) -> None:
        if not self.antecedent:
            raise ValueError("rule needs a non-empty antecedent")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence out of [0, 1]")

    @property
    def is_blackhole_rule(self) -> bool:
        """True if the consequent is the blackhole class item."""
        return self.consequent == LABEL_BLACKHOLE

    def describe(self) -> str:
        items = ", ".join(f"{a}={v}" for a, v in sorted(self.antecedent, key=repr))
        return (
            f"{{{items}}} -> {self.consequent[0]}={self.consequent[1]} "
            f"(c={self.confidence:.3f}, s={self.support:.5f})"
        )


def generate_rules(
    itemsets: dict[frozenset[Item], int],
    total: int,
    min_confidence: float,
) -> list[AssociationRule]:
    """Derive association rules from frequent itemsets.

    For every frequent itemset of size >= 2 and every item in it, a rule
    ``itemset - {item} -> item`` is emitted when its confidence reaches
    ``min_confidence`` and the antecedent itself is frequent (it always
    is, by downward closure, as long as it was mined).
    """
    if total <= 0:
        return []
    rules: list[AssociationRule] = []
    for itemset, joint_count in itemsets.items():
        if len(itemset) < 2:
            continue
        for consequent in itemset:
            antecedent = frozenset(itemset - {consequent})
            antecedent_count = itemsets.get(antecedent)
            if antecedent_count is None or antecedent_count == 0:
                continue
            confidence = joint_count / antecedent_count
            if confidence >= min_confidence:
                rules.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        confidence=confidence,
                        support=antecedent_count / total,
                        joint_support=joint_count / total,
                    )
                )
    rules.sort(key=lambda r: (-r.confidence, -r.support, repr(sorted(r.antecedent, key=repr))))
    return rules


def filter_blackhole_rules(rules: list[AssociationRule]) -> list[AssociationRule]:
    """Minimisation step (i): drop rules whose consequent isn't blackhole."""
    return [r for r in rules if r.is_blackhole_rule]


@dataclass(frozen=True)
class MiningResult:
    """Everything produced by one mining run."""

    encoder: ItemEncoder
    all_rules: list[AssociationRule]
    blackhole_rules: list[AssociationRule]
    n_transactions: int
    n_frequent_itemsets: int


def mine_rules(
    flows: FlowDataset,
    min_support: float = 0.0005,
    min_confidence: float = 0.8,
    encoder: ItemEncoder | None = None,
) -> MiningResult:
    """Run the full mining pipeline on a balanced, labeled flow dataset."""
    with obs.span(metric_names.SPAN_RULES_MINE):
        if encoder is None:
            encoder = ItemEncoder.fit(flows)
        transactions = deduplicate(encoder.encode_labeled(flows))
        total = total_weight(transactions)
        itemsets = fp_growth(transactions, min_support=min_support)
        rules = generate_rules(itemsets, total, min_confidence=min_confidence)
        result = MiningResult(
            encoder=encoder,
            all_rules=rules,
            blackhole_rules=filter_blackhole_rules(rules),
            n_transactions=total,
            n_frequent_itemsets=len(itemsets),
        )
    obs.counter(metric_names.C_RULES_TRANSACTIONS).inc(total)
    obs.counter(metric_names.C_RULES_FREQUENT_ITEMSETS).inc(len(itemsets))
    obs.counter(metric_names.C_RULES_GENERATED).inc(len(rules))
    obs.counter(metric_names.C_RULES_BLACKHOLE).inc(len(result.blackhole_rules))
    return result
