"""Experiment E-F12: geographic model drift (paper Fig. 12).

Three analyses across the five vantage points:

* **left** — full-model transfer: train everywhere (incl. a merged ALL
  model), test everywhere. Expected shape: strong diagonal and strong
  ALL row, degraded off-diagonal transfers.
* **middle** — overlap of likely reflectors (source IPs with WoE > 1)
  between sites. Expected shape: low off-diagonal overlap.
* **right** — classifier-only transfer with local WoE kept. Expected
  shape: off-diagonal recovers to near-diagonal performance (the
  paper's headline transfer result).
"""

from __future__ import annotations

import numpy as np

from repro.core.drift import (
    geographic_transfer,
    reflector_overlap_matrix,
)
from repro.core.features.aggregation import AggregatedDataset
from repro.core.models.selection import train_test_split
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import all_site_corpora
from repro.ixp.profiles import ALL_PROFILES


def _split(
    corpora: dict[str, AggregatedDataset], seed: int
) -> tuple[dict[str, AggregatedDataset], dict[str, AggregatedDataset]]:
    train, test = {}, {}
    for site, data in corpora.items():
        rng = np.random.default_rng(seed)
        tr, te = train_test_split(len(data), 1.0 / 3.0, rng, stratify=data.labels)
        train[site] = data.select(tr)
        test[site] = data.select(te)
    return train, test


def run(scale: str = "small", seed: int = 3) -> ExperimentResult:
    check_scale(scale)
    corpora = all_site_corpora(scale)
    train_sets, test_sets = _split(corpora, seed)
    # The merged "ALL" training site of Fig. 12's top row.
    train_sets_with_all = {
        "ALL": AggregatedDataset.concat(list(train_sets.values())),
        **train_sets,
    }

    result = ExperimentResult(experiment="fig12-geographic")

    full = geographic_transfer(train_sets_with_all, test_sets, keep_local_woe=False)
    for i, train_site in enumerate(full.train_sites):
        for j, test_site in enumerate(full.test_sites):
            result.rows.append(
                {
                    "analysis": "full-transfer",
                    "train": train_site,
                    "test": test_site,
                    "fbeta": float(full.scores[i, j]),
                }
            )

    local = geographic_transfer(train_sets_with_all, test_sets, keep_local_woe=True)
    for i, train_site in enumerate(local.train_sites):
        for j, test_site in enumerate(local.test_sites):
            result.rows.append(
                {
                    "analysis": "classifier-only",
                    "train": train_site,
                    "test": test_site,
                    "fbeta": float(local.scores[i, j]),
                }
            )

    # Reflector overlap between per-site fitted WoE encoders.
    scrubbers: dict[str, IXPScrubber] = {}
    for profile in ALL_PROFILES:
        scrubber = IXPScrubber(ScrubberConfig())
        scrubber.fit_aggregated(train_sets[profile.name])
        scrubbers[profile.name] = scrubber
    overlap = reflector_overlap_matrix(scrubbers)
    for i, a in enumerate(overlap.train_sites):
        for j, b in enumerate(overlap.test_sites):
            result.rows.append(
                {
                    "analysis": "reflector-overlap",
                    "train": a,
                    "test": b,
                    "fbeta": float(overlap.scores[i, j]),
                }
            )

    # Headline notes: diagonal vs off-diagonal deltas. The paper's
    # classifier-only recovery claim excludes "transfers between very
    # small IXPs", so the recovery headline is computed over the three
    # major sites; the full matrices (all cells) stay in ``rows``.
    majors = {"IXP-CE1", "IXP-US1", "IXP-SE"}

    def collect(matrix, restrict: set[str] | None = None) -> tuple[list[float], list[float]]:
        diag, off = [], []
        for i, a in enumerate(matrix.train_sites):
            for j, b in enumerate(matrix.test_sites):
                if a == "ALL" or np.isnan(matrix.scores[i, j]):
                    continue
                if restrict is not None and (a not in restrict or b not in restrict):
                    continue
                (diag if a == b else off).append(float(matrix.scores[i, j]))
        return diag, off

    full_diag, full_off = collect(full)
    _, local_off = collect(local)
    _, overlap_off = collect(overlap)
    _, full_off_major = collect(full, majors)
    _, local_off_major = collect(local, majors)
    result.notes["full_diag_mean"] = float(np.mean(full_diag))
    result.notes["full_offdiag_mean"] = float(np.mean(full_off))
    result.notes["local_offdiag_mean"] = float(np.mean(local_off))
    result.notes["full_offdiag_major_mean"] = float(np.mean(full_off_major))
    result.notes["local_offdiag_major_mean"] = float(np.mean(local_off_major))
    result.notes["reflector_overlap_offdiag_mean"] = float(np.mean(overlap_off))
    result.notes["transfer_recovery_major"] = float(
        np.mean(local_off_major) - np.mean(full_off_major)
    )
    return result
