"""E-F14: local explainability (Fig. 14a/14b).

Paper shape: the ML model and the rule tags decide coherently for the
bulk of records (paper: 70.9 %); coherent positive decisions come with
tagging rules to explain them; WoE distributions differ between true
and false positives (FPs sit at lower WoE).
"""

import numpy as np

from repro.experiments import fig14_explainability


def test_fig14_explainability(run_experiment):
    result = run_experiment(fig14_explainability)
    print()
    print(result.summary())

    assert result.notes["coherent_share"] > 0.6
    assert result.notes["explained_share"] > 0.6

    # Fig. 14b: TP records show stronger (or equal) WoE than FP records
    # on the top features — FPs drift towards neutral evidence.
    medians_tp = {
        r["metric"].split("/", 1)[1]: r["value"]
        for r in result.rows
        if r["metric"].startswith("woe_median_tp/")
    }
    medians_fp = {
        r["metric"].split("/", 1)[1]: r["value"]
        for r in result.rows
        if r["metric"].startswith("woe_median_fp/")
    }
    assert medians_tp
    comparable = [
        (medians_tp[k], medians_fp[k])
        for k in medians_tp
        if k in medians_fp and not (np.isnan(medians_tp[k]) or np.isnan(medians_fp[k]))
    ]
    if comparable:
        lower = sum(1 for tp, fp in comparable if fp <= tp + 0.25)
        assert lower >= len(comparable) / 2
