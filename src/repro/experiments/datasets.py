"""Corpus builders shared by all experiments.

Builds (and caches) the per-IXP captures, balanced flow sets and
aggregated record sets the evaluation section consumes. The ``scale``
knob controls simulated days per vantage point:

* ``small`` — a few days; seconds to build, used by tests/benchmarks.
* ``paper`` — the scaled-down analogue of the paper's 3-month window
  (and the 24-month IXP-SE window for Fig. 13).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.features.aggregation import AggregatedDataset, aggregate
from repro.core.labeling.balancer import BalancedDataset, balance
from repro.core.rules.model import TaggingRule
from repro.experiments.common import cached
from repro.ixp.fabric import IXPFabric
from repro.ixp.profiles import ALL_PROFILES, IXPProfile, profile_by_name
from repro.traffic.booter import BooterSimulator, SelfAttackCapture
from repro.traffic.workload import WorkloadCapture, WorkloadGenerator

#: Simulated days per scale for the ML training corpora.
DAYS_BY_SCALE = {"small": 6, "paper": 24}

#: Self-attack campaign size per scale.
SAS_ATTACKS_BY_SCALE = {"small": 60, "paper": 200}


def build_capture(
    profile: IXPProfile,
    n_days: int,
    start_day: int = 0,
    vector_first_seen: Optional[dict[str, int]] = None,
) -> WorkloadCapture:
    """Generate one vantage point's capture (cached)."""

    def builder() -> WorkloadCapture:
        fabric = IXPFabric(profile)
        generator = WorkloadGenerator(fabric, vector_first_seen=vector_first_seen)
        return generator.generate(start_day, n_days)

    key = (
        "capture",
        profile.name,
        n_days,
        start_day,
        tuple(sorted((vector_first_seen or {}).items())),
    )
    return cached(key, builder)


def balanced_corpus(
    profile: IXPProfile, n_days: int, start_day: int = 0
) -> BalancedDataset:
    """Labeled + balanced flows for one vantage point (cached)."""

    def builder() -> BalancedDataset:
        capture = build_capture(profile, n_days, start_day)
        labeled = capture.labeled_flows()
        return balance(labeled, np.random.default_rng(profile.seed))

    return cached(("balanced", profile.name, n_days, start_day), builder)


def aggregated_corpus(
    profile: IXPProfile,
    n_days: int,
    start_day: int = 0,
    rules: tuple[TaggingRule, ...] = (),
) -> AggregatedDataset:
    """Aggregated per-target records for one vantage point (cached).

    ``rules`` (if given) are annotated during aggregation; the cache key
    covers their ids.
    """

    def builder() -> AggregatedDataset:
        balanced = balanced_corpus(profile, n_days, start_day)
        return aggregate(balanced.flows, rules=rules)

    rule_key = tuple(sorted(r.rule_id for r in rules))
    return cached(("aggregated", profile.name, n_days, start_day, rule_key), builder)


def all_site_corpora(
    scale: str, rules: tuple[TaggingRule, ...] = ()
) -> dict[str, AggregatedDataset]:
    """Aggregated corpora for all five vantage points."""
    n_days = DAYS_BY_SCALE[scale]
    return {
        profile.name: aggregated_corpus(profile, n_days, rules=rules)
        for profile in ALL_PROFILES
    }


def merged_corpus(scale: str, rules: tuple[TaggingRule, ...] = ()) -> AggregatedDataset:
    """The merged five-IXP corpus of Table 3."""
    return AggregatedDataset.concat(list(all_site_corpora(scale, rules=rules).values()))


def self_attack_corpus(scale: str) -> SelfAttackCapture:
    """The self-attack set (SAS), captured at IXP-CE1 (cached)."""

    def builder() -> SelfAttackCapture:
        fabric = IXPFabric(profile_by_name("IXP-CE1"))
        simulator = BooterSimulator(fabric)
        return simulator.run_campaign(SAS_ATTACKS_BY_SCALE[scale])

    return cached(("sas", scale), builder)


def sas_aggregated(scale: str, rules: tuple[TaggingRule, ...] = ()) -> AggregatedDataset:
    """Aggregated SAS records with ground-truth labels (cached)."""

    def builder() -> AggregatedDataset:
        sas = self_attack_corpus(scale)
        balanced = balance(sas.flows, np.random.default_rng(0x5A5))
        return aggregate(balanced.flows, rules=rules)

    rule_key = tuple(sorted(r.rule_id for r in rules))
    return cached(("sas-agg", scale, rule_key), builder)
