"""E-F3: blackholing share CDF + balancing validation (Fig. 3a/3c)."""

from repro.experiments import fig3_balancing


def test_fig3_balancing(run_experiment):
    result = run_experiment(fig3_balancing)
    print()
    print(result.summary())

    # Fig. 3a shape: blackholed traffic is a tiny share of total bytes —
    # never above ~1 % in any bin, below 0.1 % in the bulk of bins.
    assert result.notes["max_share_any_ixp"] < 0.015
    for row in result.rows:
        assert row["median_share"] < 0.002
        assert row["share_below_0.1pct"] > 0.5

    # Fig. 3c shape: flows/IP of the two classes clearly correlate
    # (paper: Pearson r = 0.77 at p < 0.01).
    assert result.notes["pearson_r_all"] > 0.5
    assert result.notes["pearson_p_all"] < 0.01
