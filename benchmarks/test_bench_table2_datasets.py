"""E-T2: dataset overview (Table 2)."""

import numpy as np

from repro.experiments import table2_datasets


def test_table2_datasets(run_experiment):
    result = run_experiment(table2_datasets)
    print()
    print(result.summary())

    # Table 2 shape: every balanced set sits near 50:50 (paper's worst
    # deviation is 5.4 %), and balancing discards > 99.6 % of raw flows.
    assert result.notes["max_share_deviation_pct"] < 8.0
    assert result.notes["min_reduction_pct"] > 99.6

    # Ordering: raw volume follows IXP size (CE1 largest).
    ixp_rows = [r for r in result.rows if r["ixp"].startswith("IXP")]
    volumes = [r["raw_data_gb"] for r in ixp_rows]
    assert volumes[0] == max(volumes)
