"""BGP community attributes, including the RFC 7999 BLACKHOLE community.

A standard BGP community is a 32-bit value conventionally written as
``ASN:value``. RFC 7999 reserves ``65535:666`` as the well-known
BLACKHOLE community; IXPs additionally use route-server specific
communities (e.g. ``<rs-asn>:666``) which member tooling treats as
equivalent blackhole signals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Community:
    """A standard 32-bit BGP community, ``asn:value``."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise ValueError(f"community ASN out of range: {self.asn}")
        if not 0 <= self.value <= 0xFFFF:
            raise ValueError(f"community value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse ``"asn:value"``."""
        asn_text, sep, value_text = text.partition(":")
        if not sep:
            raise ValueError(f"malformed community: {text!r}")
        return cls(asn=int(asn_text), value=int(value_text))

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


#: RFC 7999 well-known BLACKHOLE community.
BLACKHOLE = Community(asn=65535, value=666)

#: Conventional blackhole value used in operator-specific communities.
BLACKHOLE_VALUE = 666


def is_blackhole_community(community: Community) -> bool:
    """True if ``community`` signals blackholing.

    Accepts the RFC 7999 well-known community and the widespread
    ``<asn>:666`` operator convention.
    """
    return community == BLACKHOLE or community.value == BLACKHOLE_VALUE


def has_blackhole_signal(communities: frozenset[Community] | set[Community]) -> bool:
    """True if any community in the set signals blackholing."""
    return any(is_blackhole_community(c) for c in communities)
