"""Tests for the time-aware blackhole registry, incl. a brute-force
cross-check of vectorised flow matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.blackhole import BlackholeEvent, BlackholeRegistry
from repro.bgp.community import BLACKHOLE
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.prefix import Prefix
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


def bh_announce(prefix: str, time: int, origin: int = 64512) -> Announcement:
    return Announcement(
        prefix=Prefix.parse(prefix),
        origin_asn=origin,
        time=time,
        communities=frozenset({BLACKHOLE}),
    )


def withdraw(prefix: str, time: int, origin: int = 64512) -> Withdrawal:
    return Withdrawal(prefix=Prefix.parse(prefix), origin_asn=origin, time=time)


class TestBlackholeEvent:
    def test_active_interval(self):
        event = BlackholeEvent(Prefix.parse("10.0.0.1/32"), 1, start=10, end=20)
        assert not event.active_at(9)
        assert event.active_at(10)
        assert event.active_at(19)
        assert not event.active_at(20)

    def test_open_interval(self):
        event = BlackholeEvent(Prefix.parse("10.0.0.1/32"), 1, start=10, end=None)
        assert event.active_at(10**9)
        assert event.duration is None

    def test_duration(self):
        event = BlackholeEvent(Prefix.parse("10.0.0.1/32"), 1, start=10, end=25)
        assert event.duration == 15


class TestRegistry:
    def test_announce_withdraw_creates_event(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.1/32", 10))
        registry.apply(withdraw("10.0.0.1/32", 50))
        events = registry.events()
        assert len(events) == 1
        assert events[0].start == 10 and events[0].end == 50

    def test_open_event_reported(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.1/32", 10))
        assert registry.events()[0].end is None
        assert registry.events(include_open=False) == []

    def test_reannounce_without_community_closes(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.1/32", 10))
        registry.apply(
            Announcement(prefix=Prefix.parse("10.0.0.1/32"), origin_asn=64512, time=30)
        )
        events = registry.events()
        assert events[0].end == 30

    def test_duplicate_announce_keeps_original_start(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.1/32", 10))
        registry.apply(bh_announce("10.0.0.1/32", 20))
        registry.apply(withdraw("10.0.0.1/32", 40))
        assert registry.events()[0].start == 10

    def test_out_of_order_rejected(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.1/32", 10))
        with pytest.raises(ValueError):
            registry.apply(withdraw("10.0.0.1/32", 5))

    def test_is_blackholed_point_query(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.0/24", 10))
        registry.apply(withdraw("10.0.0.0/24", 50))
        target = int(Prefix.parse("10.0.0.77/32").network)
        assert registry.is_blackholed(target, 30)
        assert not registry.is_blackholed(target, 60)
        assert not registry.is_blackholed(int(Prefix.parse("10.0.1.1/32").network), 30)

    def test_count_active(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("10.0.0.1/32", 0))
        registry.apply(bh_announce("10.0.0.2/32", 5))
        registry.apply(withdraw("10.0.0.1/32", 10))
        assert registry.count_active(7) == 2
        assert registry.count_active(12) == 1


class TestMatchFlows:
    def test_basic_matching(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("0.0.0.100/32", 60))
        registry.apply(withdraw("0.0.0.100/32", 120))
        flows = FlowDataset.from_records(
            [
                make_flow(time=30, dst_ip=100),  # before blackhole
                make_flow(time=70, dst_ip=100),  # inside
                make_flow(time=70, dst_ip=200),  # other target
                make_flow(time=130, dst_ip=100),  # after withdraw
            ]
        )
        mask = registry.match_flows(flows)
        np.testing.assert_array_equal(mask, [False, True, False, False])

    def test_open_blackhole_clipped_by_horizon(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("0.0.0.100/32", 60))
        flows = FlowDataset.from_records(
            [make_flow(time=70, dst_ip=100), make_flow(time=500, dst_ip=100)]
        )
        mask = registry.match_flows(flows, horizon=100)
        np.testing.assert_array_equal(mask, [True, False])

    def test_unsorted_flows_supported(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("0.0.0.100/32", 60))
        registry.apply(withdraw("0.0.0.100/32", 120))
        flows = FlowDataset.from_records(
            [make_flow(time=130, dst_ip=100), make_flow(time=70, dst_ip=100)]
        )
        mask = registry.match_flows(flows)
        np.testing.assert_array_equal(mask, [False, True])

    def test_label_flows_sets_column(self):
        registry = BlackholeRegistry()
        registry.apply(bh_announce("0.0.0.100/32", 0))
        flows = FlowDataset.from_records([make_flow(time=10, dst_ip=100)])
        labeled = registry.label_flows(flows, horizon=100)
        assert labeled.blackhole.all()


@settings(max_examples=30, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),  # dst ip (small space)
            st.integers(min_value=0, max_value=500),  # start
            st.integers(min_value=1, max_value=300),  # duration
        ),
        min_size=1,
        max_size=8,
    ),
    flows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=1000),
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_match_flows_equals_point_queries(events, flows):
    """Vectorised matching agrees with per-flow point queries."""
    registry = BlackholeRegistry()
    updates = []
    for ip, start, duration in events:
        prefix = f"0.0.0.{ip}/32"
        updates.append(bh_announce(prefix, start, origin=64512))
        updates.append(withdraw(prefix, start + duration, origin=64512))
    updates.sort(key=lambda u: u.time)
    registry.apply_all(updates)

    dataset = FlowDataset.from_records(
        [make_flow(time=t, dst_ip=ip) for ip, t in flows]
    )
    mask = registry.match_flows(dataset)
    expected = [
        registry.is_blackholed(int(dataset.dst_ip[i]), int(dataset.time[i]))
        for i in range(len(dataset))
    ]
    np.testing.assert_array_equal(mask, expected)
