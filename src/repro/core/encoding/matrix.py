"""Assembling aggregated records into model-ready matrices.

The feature matrix has one column per feature of the aggregation schema:
the 75 categorical key columns pass through the fitted
:class:`~repro.core.encoding.woe.WoEEncoder`, the 75 metric value
columns stay numeric (NaN for absent ranks — imputation happens inside
the model pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.encoding.woe import FrozenWoE, WoEEncoder
from repro.core.features import schema
from repro.core.features.aggregation import AggregatedDataset
from repro.obs import names as metric_names


@dataclass(frozen=True)
class FeatureMatrix:
    """A dense float matrix plus its column names and labels."""

    X: np.ndarray
    y: np.ndarray
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X / y length mismatch")
        if self.X.shape[1] != len(self.columns):
            raise ValueError("X width / columns mismatch")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def column_index(self, name: str) -> int:
        return self.columns.index(name)


def feature_columns() -> tuple[str, ...]:
    """Canonical column order: WoE-encoded keys, then metric values."""
    return tuple(schema.key_columns() + schema.value_columns())


def assemble(data: AggregatedDataset, woe: WoEEncoder) -> FeatureMatrix:
    """Build the 150-column feature matrix for aggregated records."""
    if not woe.is_fitted:
        raise RuntimeError("WoE encoder must be fitted before assembling")
    with obs.span(metric_names.SPAN_ENCODING_ASSEMBLE):
        columns = feature_columns()
        n = len(data)
        X = np.empty((n, len(columns)), dtype=np.float64)
        encoded = woe.transform(data)
        for j, name in enumerate(columns):
            if name in data.categorical:
                X[:, j] = encoded[name]
            else:
                X[:, j] = data.metrics[name]
    obs.counter(metric_names.C_ENCODING_ROWS_ASSEMBLED).inc(n)
    return FeatureMatrix(X=X, y=data.labels.astype(np.int64), columns=columns)


class MatrixAssembler:
    """Reusable, allocation-light matrix assembler for streaming shards.

    Holds a :class:`~repro.core.encoding.woe.FrozenWoE` snapshot and a
    grow-only row buffer so that per-bin assembly costs one WoE lookup
    pass and zero table rebuilds. Output is bit-identical to
    :func:`assemble` with the live encoder the snapshot was frozen from.

    The returned :class:`FeatureMatrix` *views* the internal buffer and
    is only valid until the next :meth:`assemble` call — score it
    immediately (model pipelines copy during their transforms).
    """

    def __init__(self, woe: WoEEncoder | FrozenWoE):
        self._frozen = woe.freeze() if isinstance(woe, WoEEncoder) else woe
        self._columns = feature_columns()
        self._buffer: np.ndarray | None = None

    @property
    def frozen(self) -> FrozenWoE:
        return self._frozen

    def assemble(self, data: AggregatedDataset) -> FeatureMatrix:
        """Build the feature matrix into the reusable buffer."""
        with obs.span(metric_names.SPAN_ENCODING_ASSEMBLE):
            n = len(data)
            if self._buffer is None or self._buffer.shape[0] < n:
                self._buffer = np.empty((n, len(self._columns)), dtype=np.float64)
            X = self._buffer[:n]
            for j, name in enumerate(self._columns):
                if name in data.categorical:
                    X[:, j] = self._frozen.encode_column(name, data.categorical[name])
                else:
                    X[:, j] = data.metrics[name]
        obs.counter(metric_names.C_ENCODING_ROWS_ASSEMBLED).inc(n)
        return FeatureMatrix(X=X, y=data.labels.astype(np.int64), columns=self._columns)
