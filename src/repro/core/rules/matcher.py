"""Vectorised matching of tagging rules against flow datasets.

Used in three places: annotating flows for feature aggregation (rule
tags survive into the per-target records, §5.2), the rule-based baseline
classifier (RBC, §5.2.2), and rendering ACL hit statistics for operators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.rules.model import PortMatch, TaggingRule
from repro.netflow.dataset import FlowDataset


def _port_mask(match: PortMatch, ports: np.ndarray) -> np.ndarray:
    inside = np.isin(ports, match.values_array())
    return ~inside if match.negated else inside


def rule_mask(rule: TaggingRule, flows: FlowDataset) -> np.ndarray:
    """Boolean mask of flows matching one rule."""
    mask = np.ones(len(flows), dtype=bool)
    if rule.protocol is not None:
        mask &= flows.protocol == rule.protocol
    if rule.port_src is not None:
        mask &= _port_mask(rule.port_src, flows.src_port)
    if rule.port_dst is not None:
        mask &= _port_mask(rule.port_dst, flows.dst_port)
    if rule.packet_size is not None:
        low, high = rule.packet_size
        sizes = flows.packet_size
        mask &= (sizes > low) & (sizes <= high)
    return mask


def match_matrix(rules: Sequence[TaggingRule], flows: FlowDataset) -> np.ndarray:
    """(n_flows, n_rules) boolean matrix of rule matches."""
    if not rules:
        return np.zeros((len(flows), 0), dtype=bool)
    return np.stack([rule_mask(rule, flows) for rule in rules], axis=1)


def match_any(rules: Sequence[TaggingRule], flows: FlowDataset) -> np.ndarray:
    """Per-flow boolean: does any rule match?"""
    mask = np.zeros(len(flows), dtype=bool)
    for rule in rules:
        mask |= rule_mask(rule, flows)
    return mask


def matched_rule_ids(
    rules: Sequence[TaggingRule], flows: FlowDataset
) -> list[tuple[str, ...]]:
    """Per-flow tuple of matching rule ids (for annotation/explanation)."""
    matrix = match_matrix(rules, flows)
    n_flows = matrix.shape[0]
    if not rules:
        return [()] * n_flows
    # One nonzero pass over the whole matrix instead of a Python loop
    # with a flatnonzero per row: nonzero returns row-major order, so
    # each flow's matches form one contiguous, column-sorted run.
    ids = np.array([rule.rule_id for rule in rules], dtype=object)
    row_idx, col_idx = np.nonzero(matrix)
    matched = ids[col_idx]
    bounds = np.zeros(n_flows + 1, dtype=np.int64)
    np.cumsum(np.bincount(row_idx, minlength=n_flows), out=bounds[1:])
    return [tuple(matched[bounds[i] : bounds[i + 1]]) for i in range(n_flows)]


def coverage(
    rules: Sequence[TaggingRule], flows: FlowDataset
) -> dict[str, float]:
    """Evaluate an ACL set against ground-truth labeled flows.

    Returns the share of attack flows dropped (recall on the positive
    class) and the share of benign flows dropped (collateral), the two
    quantities of the operator study (§5.1.3).
    """
    labels = flows.blackhole
    hits = match_any(rules, flows)
    n_attack = int(labels.sum())
    n_benign = int((~labels).sum())
    return {
        "attack_dropped": float((hits & labels).sum() / n_attack) if n_attack else 0.0,
        "benign_dropped": float((hits & ~labels).sum() / n_benign) if n_benign else 0.0,
    }
