"""Per-region reflector pools.

A reflector pool holds, per DDoS vector, the set of abusable hosts
(open NTP servers, open resolvers, exposed memcached instances, ...)
visible from one vantage point. Pools are region-local with a small
configurable overlap: the paper finds a "very low overlap of DDoS
reflection hosts among IXPs" (Fig. 12, middle), which is exactly what
breaks naive cross-IXP model transfer and what WoE re-localisation fixes.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.traffic.address_space import region_reflector_block
from repro.traffic.vectors import ALL_VECTORS, DDoSVector


class ReflectorPool:
    """The reflectors of one region, keyed by vector name.

    Pools *churn* over time: abusable hosts get patched or taken down
    while fresh ones are exposed. ``churn_fraction`` of each pool is
    replaced per epoch (epochs are whatever the caller chooses, usually
    simulated days); :meth:`pool_at_epoch` derives the epoch-``e`` pool
    deterministically by chaining replacements, so overlap between two
    epochs decays geometrically with their distance — the temporal drift
    of "new DDoS reflection hosts" the paper discusses in §6.3.
    """

    #: Shared block (region index 15) from which the overlapping fraction
    #: of every pool is drawn, so that a small set of globally-known
    #: reflectors appears at multiple vantage points.
    _SHARED_REGION = 15

    def __init__(
        self,
        region: int,
        seed: int,
        pool_size: int = 400,
        shared_fraction: float = 0.05,
        churn_fraction: float = 0.0,
    ):
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValueError("shared_fraction out of [0, 1]")
        if not 0.0 <= churn_fraction < 1.0:
            raise ValueError("churn_fraction out of [0, 1)")
        self.region = region
        self.churn_fraction = churn_fraction
        self._seed = seed
        self._pools: dict[str, np.ndarray] = {}
        self._epoch_pools: dict[tuple[str, int], np.ndarray] = {}
        rng = np.random.default_rng(seed)
        local_block = region_reflector_block(region)
        shared_block = region_reflector_block(self._SHARED_REGION)
        n_shared = int(round(pool_size * shared_fraction))
        # The shared sub-pool is drawn from a *fixed* seed so every region
        # sees the same globally-known reflectors.
        shared_rng = np.random.default_rng(0xC0FFEE)
        for vector in ALL_VECTORS:
            local = local_block.sample(rng, pool_size - n_shared, replace=False)
            shared = shared_block.sample(shared_rng, n_shared, replace=False)
            pool = np.union1d(local, shared).astype(np.uint32)
            # Shuffle so shared reflectors land at random Zipf ranks —
            # union1d sorts by address, which would otherwise push the
            # (high-address) shared block to the never-used tail.
            self._pools[vector.name] = rng.permutation(pool)

    def reflectors(self, vector: DDoSVector | str) -> np.ndarray:
        """All reflector addresses for ``vector`` (epoch 0)."""
        name = vector if isinstance(vector, str) else vector.name
        return self._pools[name]

    def pool_at_epoch(self, vector: DDoSVector | str, epoch: int) -> np.ndarray:
        """The (deterministic) reflector pool at ``epoch``."""
        name = vector if isinstance(vector, str) else vector.name
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        if epoch == 0 or self.churn_fraction == 0.0:
            return self._pools[name]
        cached = self._epoch_pools.get((name, epoch))
        if cached is not None:
            return cached
        previous = self.pool_at_epoch(name, epoch - 1)
        # crc32, not hash(): str hashing is salted per interpreter, so
        # hash(name) would give every process a different churn stream.
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self._seed, epoch, zlib.crc32(name.encode()) & 0xFFFF]
            )
        )
        pool = previous.copy()
        n_replace = int(round(self.churn_fraction * pool.shape[0]))
        if n_replace:
            positions = rng.choice(pool.shape[0], size=n_replace, replace=False)
            block = region_reflector_block(self.region)
            pool[positions] = block.sample(rng, n_replace)
        self._epoch_pools[(name, epoch)] = pool
        return pool

    def sample(
        self,
        vector: DDoSVector | str,
        rng: np.random.Generator,
        n: int,
        epoch: int = 0,
    ) -> np.ndarray:
        """Draw ``n`` reflector addresses (with replacement, skewed).

        Reflection attacks do not use reflectors uniformly: booters keep
        lists in which a minority of high-bandwidth reflectors carries
        most traffic. A Zipf-ish weighting reproduces that skew.
        """
        pool = self.pool_at_epoch(vector, epoch)
        ranks = np.arange(1, pool.shape[0] + 1, dtype=np.float64)
        weights = 1.0 / ranks
        weights /= weights.sum()
        return rng.choice(pool, size=n, replace=True, p=weights)

    def overlap(self, other: "ReflectorPool", vector: DDoSVector | str) -> float:
        """Jaccard overlap of two pools for one vector."""
        a = set(self.reflectors(vector).tolist())
        b = set(other.reflectors(vector).tolist())
        union = a | b
        if not union:
            return 0.0
        return len(a & b) / len(union)
