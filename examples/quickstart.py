#!/usr/bin/env python
"""Quickstart: train an IXP Scrubber on synthetic IXP traffic.

Walks the full pipeline of the paper on a small vantage point:

1. simulate an IXP workload (benign + DDoS + blackholing BGP feed),
2. derive crowdsourced labels from the blackhole announcements,
3. balance the dataset (paper §3),
4. fit the two-step model (rule mining + WoE + gradient-boosted trees),
5. classify per-target records and print verdicts, ACLs, and a local
   explanation for one detection.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    IXP_SE,
    IXPFabric,
    IXPScrubber,
    WorkloadGenerator,
    balance,
    explain_record,
    label_capture,
)
from repro.netflow.record import int_to_ip


def main() -> None:
    print("=== 1. Simulating the vantage point (IXP-SE, 3 days) ===")
    fabric = IXPFabric(IXP_SE)
    capture = WorkloadGenerator(fabric).generate(start_day=0, n_days=3)
    share = capture.bin_stats.blackhole_share()
    print(f"flows recorded:        {len(capture.flows):,}")
    print(f"BGP updates:           {len(capture.updates):,}")
    print(f"attack events:         {len(capture.events):,}")
    print(f"blackholed traffic:    median {np.median(share):.4%} of bytes/min")

    print("\n=== 2-3. Labeling from blackholes + balancing ===")
    labeled = label_capture(capture)
    balanced = balance(labeled, np.random.default_rng(0))
    report = balanced.report
    print(f"labeled blackhole flows: {int(labeled.blackhole.sum()):,}")
    print(f"balanced dataset:        {len(balanced.flows):,} flows "
          f"({balanced.blackhole_share:.1%} blackhole)")
    print(f"data reduction:          {report.reduction:.2%}")
    print(f"flows/IP correlation:    r = {report.pearson_r():.2f}")

    print("\n=== 4. Fitting the two-step scrubber ===")
    scrubber = IXPScrubber()
    scrubber.fit(balanced.flows)
    print(f"tagging rules mined:     {len(scrubber.rule_set)} "
          f"({len(scrubber.accepted_rules)} accepted)")
    for rule in scrubber.accepted_rules[:3]:
        print("  " + rule.describe())

    print("\n=== 5. Classifying per-target records ===")
    verdicts = scrubber.predict_flows(balanced.flows)
    positives = [v for v in verdicts if v.is_ddos]
    print(f"records classified:      {len(verdicts):,}")
    print(f"DDoS verdicts:           {len(positives):,}")
    acls = scrubber.generate_acls(verdicts)
    print(f"ACLs to install:         {len(acls)}")

    # Explain the most confident detection.
    data = scrubber.aggregate_flows(balanced.flows)
    scores = scrubber.score_aggregated(data)
    top = int(np.argmax(scores))
    explanation = explain_record(
        data, top, scrubber.woe, float(scores[top]), rules=scrubber.accepted_rules
    )
    print("\n=== Local explanation of the top detection ===")
    print(explanation.summary())

    victim = int_to_ip(int(data.targets[top]))
    print(f"\nOperator action: rate-limit or drop traffic to {victim} "
          f"using the {len(explanation.matched_rules)} matched ACL(s).")


if __name__ == "__main__":
    main()
