"""Time-aware registry of blackholed prefixes.

The registry consumes the BGP feed (announcements carrying a blackhole
community and their withdrawals) and records, per prefix, the intervals
during which the prefix was blackholed. The labeler
(:mod:`repro.core.labeling`) then asks, for every sampled flow, whether
its destination was covered by an active blackhole at the flow's
timestamp — the crowdsourced label of §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.prefix import Prefix
from repro.netflow.dataset import FlowDataset


@dataclass(frozen=True)
class BlackholeEvent:
    """One contiguous blackholing interval for a prefix.

    ``end`` is exclusive; ``None`` means the blackhole was still active at
    the end of the observed feed.
    """

    prefix: Prefix
    origin_asn: int
    start: int
    end: Optional[int]

    @property
    def duration(self) -> Optional[int]:
        """Interval length in seconds, or ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def active_at(self, time: int) -> bool:
        """True if the blackhole was active at ``time``."""
        if time < self.start:
            return False
        return self.end is None or time < self.end


class BlackholeRegistry:
    """Tracks blackhole intervals derived from a BGP update feed."""

    def __init__(self) -> None:
        self._open: dict[tuple[Prefix, int], int] = {}
        self._events: list[BlackholeEvent] = []
        self._last_time: int | None = None

    def apply(self, update: Update) -> None:
        """Feed one BGP update (in non-decreasing timestamp order)."""
        if self._last_time is not None and update.time < self._last_time:
            raise ValueError(
                f"out-of-order BGP update at t={update.time} (last {self._last_time})"
            )
        self._last_time = update.time
        key = (update.prefix, update.origin_asn)
        if isinstance(update, Announcement):
            if update.is_blackhole:
                self._open.setdefault(key, update.time)
            else:
                # A re-announcement without the blackhole community ends
                # any open blackhole for this (prefix, origin).
                self._close(key, update.time)
        elif isinstance(update, Withdrawal):
            self._close(key, update.time)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown update type: {type(update)!r}")

    def apply_all(self, updates: Iterable[Update]) -> None:
        """Feed a sequence of updates in order."""
        for update in updates:
            self.apply(update)

    def _close(self, key: tuple[Prefix, int], time: int) -> None:
        start = self._open.pop(key, None)
        if start is not None:
            prefix, origin = key
            self._events.append(
                BlackholeEvent(prefix=prefix, origin_asn=origin, start=start, end=time)
            )

    def events(self, include_open: bool = True) -> list[BlackholeEvent]:
        """All recorded blackhole intervals, closed first, then open ones."""
        out = list(self._events)
        if include_open:
            for (prefix, origin), start in self._open.items():
                out.append(
                    BlackholeEvent(prefix=prefix, origin_asn=origin, start=start, end=None)
                )
        return out

    def active_at(self, time: int) -> list[BlackholeEvent]:
        """Blackhole intervals covering ``time``."""
        return [e for e in self.events() if e.active_at(time)]

    def is_blackholed(self, address: int, time: int) -> bool:
        """Point query: was ``address`` under an active blackhole at ``time``?"""
        return any(
            e.prefix.contains(address) for e in self.events() if e.active_at(time)
        )

    def match_flows(self, flows: FlowDataset, horizon: Optional[int] = None) -> np.ndarray:
        """Return a boolean mask of flows destined to blackholed space.

        A flow matches when its destination IP falls inside a blackholed
        prefix whose interval covers the flow timestamp. Open intervals
        are clipped at ``horizon`` if given, else treated as unbounded.

        Complexity is O(events x log flows + matched flows): the flow
        dataset is scanned per event on its time-sorted order, so short
        blackholes only touch the flows inside their window.
        """
        n = len(flows)
        mask = np.zeros(n, dtype=bool)
        if n == 0:
            return mask
        order = np.argsort(flows.time, kind="stable")
        times = flows.time[order]
        dsts = flows.dst_ip[order]
        for event in self.events():
            end = event.end
            if end is None:
                end = horizon if horizon is not None else int(times[-1]) + 1
            lo = int(np.searchsorted(times, event.start, side="left"))
            hi = int(np.searchsorted(times, end, side="left"))
            if lo >= hi:
                continue
            window = dsts[lo:hi]
            prefix = event.prefix
            hit = (window & np.uint32(prefix.mask)) == np.uint32(prefix.network)
            mask[order[lo:hi][hit]] = True
        return mask

    def label_flows(self, flows: FlowDataset, horizon: Optional[int] = None) -> FlowDataset:
        """Return ``flows`` with the ``blackhole`` column set from the feed."""
        return flows.with_blackhole(self.match_flows(flows, horizon=horizon))

    def count_active(self, time: int) -> int:
        """Number of blackholes active at ``time`` (cf. looking-glass stats)."""
        return len(self.active_at(time))
