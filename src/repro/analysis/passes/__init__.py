"""Pass registry: every project-contract pass the runner executes."""

from __future__ import annotations

from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.durability import DurabilityPass
from repro.analysis.passes.hot_path import HotPathPass
from repro.analysis.passes.layering import LayeringPass
from repro.analysis.passes.obs_names import ObsNamesPass
from repro.analysis.passes.resource_lifecycle import ResourceLifecyclePass
from repro.analysis.passes.shard_safety import ShardSafetyPass

__all__ = ["ALL_PASSES", "MODULE_PASSES", "PROJECT_PASSES",
           "DeterminismPass", "DurabilityPass", "HotPathPass",
           "LayeringPass", "ObsNamesPass", "ResourceLifecyclePass",
           "ShardSafetyPass"]

#: Instantiable passes in execution order. Each exposes ``name``,
#: ``rule_ids``, ``scope`` and ``run(project, config) -> list[Finding]``.
#: Passes with ``scope == "module"`` additionally expose
#: ``run_module(module, config)`` — their findings depend on one file's
#: content only, which is what makes the incremental cache sound.
ALL_PASSES = (
    DeterminismPass,
    ShardSafetyPass,
    LayeringPass,
    ObsNamesPass,
    DurabilityPass,
    ResourceLifecyclePass,
    HotPathPass,
)

#: The per-module passes (cacheable per file sha).
MODULE_PASSES = tuple(p for p in ALL_PASSES if p.scope == "module")

#: The whole-project passes (cacheable on the project fingerprint).
PROJECT_PASSES = tuple(p for p in ALL_PASSES if p.scope == "project")
