"""Recovery session: exactly-once verdict emission around an engine.

:class:`RecoverySession` is the glue a driver loop wraps around a
checkpoint-enabled engine. Its contract is the one the chaos suite
kills processes to verify: **the concatenation of verdicts emitted
across any number of crashed-and-resumed incarnations is bit-identical
to one uninterrupted run.**

The pieces and their order of operations:

* a *tick* is the driver's chunk index (the ``chunk_bins``-sized ingest
  step both the CLI and the scenario conductor use); the final
  ``flush`` gets the tick after the last chunk;
* every processed tick is journaled — journal append strictly precedes
  emission to the caller, and checkpointing strictly follows the
  append, so the on-disk invariant ``snapshot tick <= journal tick``
  always holds;
* on resume, the engine is rebuilt from the newest *valid* snapshot
  (tick ``t_c``; or from scratch if none validates — the journal, not
  the snapshot, is the source of truth). Ticks ``<= t_c`` are skipped
  outright; ticks in ``(t_c, journal head]`` are re-ingested and must
  reproduce the journaled bytes exactly (:class:`ResumeDivergenceError`
  otherwise) while their verdicts are *suppressed*, because the dead
  incarnation already emitted them; ticks past the head append and emit
  normally.

Because the journal is canonical bytes, a resumed run's journal file is
byte-identical to the uninterrupted run's — equivalence checks in CI
are a plain ``cmp``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro import obs
from repro.core.recovery.errors import (
    CheckpointWriteError,
    JournalExistsError,
    NoCheckpointError,
    ResumeDivergenceError,
)
from repro.core.recovery.journal import VerdictJournal, canonical_entry
from repro.core.recovery.snapshot import CheckpointStore, DiskFaultInjector
from repro.obs import names

__all__ = ["RecoverySession", "iter_chunks", "drive_engine"]


class RecoverySession:
    """Checkpoints and journals one engine's verdict stream.

    Parameters
    ----------
    engine:
        Any engine exposing ``capture_state``/``restore_state`` and
        ``registry`` (:class:`StreamingScrubber` or
        :class:`ShardedStreamingScrubber`).
    directory:
        The checkpoint directory — journal plus snapshots.
    every:
        Checkpoint cadence in ticks (a snapshot after every N-th
        journaled tick). ``0`` disables snapshots; the journal still
        makes resume possible via full replay.
    resume:
        Continue a previous run found in ``directory``. Without it, a
        directory that already holds journal history is refused
        (:class:`JournalExistsError`) — starting a fresh run there
        would interleave two verdict streams.
    fault_specs:
        Disk-fault specs from the ``REPRO_FAULTS`` grammar (only specs
        with ``is_disk`` are used; worker faults belong to the backend).
    crash_handler:
        Override for the ``crash-at-checkpoint`` fault's process death
        (tests raise instead of ``os._exit``).
    """

    def __init__(
        self,
        engine,
        directory: Path,
        every: int = 8,
        resume: bool = False,
        fault_specs: Iterable = (),
        crash_handler=None,
    ):
        if every < 0:
            raise ValueError("every must be >= 0")
        self.engine = engine
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._every = every
        journal_path = self.directory / VerdictJournal.FILENAME
        if not resume and journal_path.exists() and journal_path.stat().st_size:
            raise JournalExistsError(
                f"{self.directory} already holds a verdict journal; pass "
                "--resume to continue that run or use an empty directory"
            )
        self._journal = VerdictJournal.open(journal_path)
        try:
            self._store = CheckpointStore(
                self.directory,
                injector=DiskFaultInjector(fault_specs),
                crash_handler=crash_handler,
            )
            self._restored_tick = -1
            self._replay_entries = {e.tick: e for e in self._journal.entries}
            if resume:
                self._restore()
        except BaseException:
            # A half-built session must not strand the journal's fd.
            self.close()
            raise

    # ------------------------------------------------------------------
    def _restore(self) -> None:
        with obs.use_registry(self.engine.registry), obs.span(
            names.SPAN_CHECKPOINT_RESTORE
        ):
            try:
                tick, state, rejected = self._store.latest()
            except NoCheckpointError:
                # Every snapshot (if any) failed validation: full replay.
                tick, state, rejected = -1, None, len(self._store.ticks())
            if state is not None:
                self.engine.restore_state(state)
            self._restored_tick = tick
            obs.counter(names.C_CHECKPOINT_RESUMES).inc()
            obs.counter(names.C_CHECKPOINT_SNAPSHOTS_REJECTED).inc(rejected)
            obs.gauge(names.G_CHECKPOINT_RESUME_LAG_TICKS).set(
                max(0, self._journal.last_tick - tick)
            )

    # ------------------------------------------------------------------
    @property
    def restored_tick(self) -> int:
        """Tick of the restored snapshot (-1 = started from scratch)."""
        return self._restored_tick

    @property
    def journaled_tick(self) -> int:
        """Highest tick the journal has committed (-1 = none)."""
        return self._journal.last_tick

    def skip_ingest(self, tick: int) -> bool:
        """True when the restored snapshot already contains this tick."""
        return tick <= self._restored_tick

    # ------------------------------------------------------------------
    def record(self, tick: int, verdicts: list) -> list:
        """Journal one processed tick; return the verdicts to *emit*.

        In the replay zone the result is empty (already emitted by the
        dead incarnation) and the recomputed verdicts are verified
        against the journal byte-for-byte.
        """
        with obs.use_registry(self.engine.registry):
            if tick <= self._journal.last_tick:
                return self._verify_replay(tick, verdicts)
            self._journal.append(tick, verdicts)
            obs.counter(names.C_CHECKPOINT_JOURNAL_APPENDS).inc()
            self.maybe_checkpoint(tick)
        return verdicts

    def _verify_replay(self, tick: int, verdicts: list) -> list:
        entry = self._replay_entries.get(tick)
        body = canonical_entry(tick, verdicts)
        if entry is None or entry.body != body:
            raise ResumeDivergenceError(
                f"tick {tick}: replay produced different verdicts than the "
                f"journal recorded (journal={'<missing>' if entry is None else entry.body!r}, "
                f"replay={body!r}); snapshot, journal, input stream and "
                "code must be identical across incarnations"
            )
        obs.counter(names.C_CHECKPOINT_VERDICTS_SUPPRESSED).inc(len(verdicts))
        return []

    # ------------------------------------------------------------------
    def maybe_checkpoint(self, tick: int) -> bool:
        """Snapshot when the cadence says so; True if one was committed."""
        if self._every and (tick + 1) % self._every == 0:
            return self.checkpoint(tick)
        return False

    def checkpoint(self, tick: int) -> bool:
        """Snapshot the engine at ``tick``; False on survivable failure."""
        with obs.use_registry(self.engine.registry), obs.span(
            names.SPAN_CHECKPOINT_SAVE
        ):
            state = self.engine.capture_state()
            try:
                self._store.save(tick, state)
            except CheckpointWriteError:
                # Disk said no; the previous snapshot still stands and
                # the journal keeps resume correct regardless.
                obs.counter(names.C_CHECKPOINT_FAILURES).inc()
                return False
            obs.counter(names.C_CHECKPOINT_SAVES).inc()
            payload = self.directory / f"ckpt-{tick:012d}.state.json"
            obs.gauge(names.G_CHECKPOINT_STATE_BYTES).set(
                payload.stat().st_size if payload.exists() else 0
            )
        return True

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "RecoverySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The shared driver loop
# ----------------------------------------------------------------------
def iter_chunks(
    flows,
    updates: Iterable,
    chunk_bins: int = 8,
    start_bin: Optional[int] = None,
    end_bin: Optional[int] = None,
) -> Iterator[tuple[int, object, list]]:
    """Yield ``(tick, chunk_flows, chunk_updates)`` in driver order.

    This is the one chunking rule every checkpoint-aware driver (CLI,
    scenario conductor, tests) must share: ticks count ``chunk_bins``
    one-minute bins from ``start_bin`` (default: the first bin with
    traffic) up to ``end_bin`` exclusive (default: one past the last),
    and a BGP update rides with the first chunk whose window end exceeds
    its timestamp. Identical chunking across incarnations is what makes
    replay verification byte-exact.
    """
    from repro.netflow.dataset import BIN_SECONDS

    updates = sorted(updates, key=lambda u: u.time)
    bins = flows.time // BIN_SECONDS
    if start_bin is None:
        start_bin = int(bins.min()) if len(flows) else 0
    if end_bin is None:
        end_bin = int(bins.max()) + 1 if len(flows) else start_bin
    u = 0
    for tick, chunk_start in enumerate(range(start_bin, end_bin, chunk_bins)):
        mask = (bins >= chunk_start) & (bins < chunk_start + chunk_bins)
        chunk_updates = []
        limit = (chunk_start + chunk_bins) * BIN_SECONDS
        while u < len(updates) and updates[u].time < limit:
            chunk_updates.append(updates[u])
            u += 1
        yield tick, flows.select(mask), chunk_updates


def drive_engine(
    engine,
    flows,
    updates: Iterable = (),
    chunk_bins: int = 8,
    session: Optional[RecoverySession] = None,
    start_bin: Optional[int] = None,
    end_bin: Optional[int] = None,
    stop_after_tick: Optional[int] = None,
) -> list:
    """Stream a capture through an engine, optionally under recovery.

    Returns the emitted verdicts (resume semantics applied when a
    ``session`` is given). ``stop_after_tick`` abandons the run right
    after recording that tick — no flush, no cleanup — which is how
    tests and scenarios simulate a coordinator killed mid-stream.
    """
    emitted: list = []
    last_tick = -1
    for tick, chunk, chunk_updates in iter_chunks(
        flows, updates, chunk_bins=chunk_bins, start_bin=start_bin, end_bin=end_bin
    ):
        last_tick = tick
        if session is not None and session.skip_ingest(tick):
            continue
        out = engine.ingest(chunk, chunk_updates)
        if session is not None:
            out = session.record(tick, out)
        emitted.extend(out)
        if stop_after_tick is not None and tick >= stop_after_tick:
            return emitted
    flush_tick = last_tick + 1
    if session is not None and session.skip_ingest(flush_tick):
        return emitted
    out = engine.flush()
    if session is not None:
        out = session.record(flush_tick, out)
    emitted.extend(out)
    return emitted
