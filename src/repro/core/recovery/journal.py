"""Append-only verdict journal: the authoritative emitted stream.

The journal is what makes resume *exactly-once*. Every ingest tick the
engine processes appends one line — even a tick that closed no bins
appends an empty verdict list — so after a crash the journal head tells
the resuming process precisely which ticks the dead incarnation already
emitted. Snapshots are merely an optimisation that shortens replay; the
journal is the source of truth.

Line format (one per tick, strictly increasing)::

    <crc32 hex, 8 chars> <canonical JSON>\\n

where the canonical JSON is ``{"tick": t, "verdicts": [...]}`` encoded
with sorted keys and minimal separators, so a given verdict list has
exactly one byte representation. That buys two properties:

* a resumed run appending the same verdicts produces a **byte-identical
  journal file** to the uninterrupted run — CI can literally ``cmp``;
* replay verification is string comparison: the resuming engine
  re-canonicalises its replayed verdicts and compares against the
  stored line body bit for bit.

Crash semantics: each append is flushed and fsynced, so at most the
*final* line can be torn (cut mid-write by the crash). Recovery
truncates a torn tail and continues; a checksum failure anywhere before
the tail means real corruption and raises
:class:`~repro.core.recovery.errors.CorruptJournalError` — resuming
from a doctored history would fabricate verdicts.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.core.recovery.durable import fsync_dir
from repro.core.recovery.errors import CorruptJournalError

__all__ = [
    "VerdictJournal",
    "JournalEntry",
    "canonical_entry",
    "verdict_to_obj",
    "verdict_from_obj",
]


def verdict_to_obj(verdict) -> dict:
    """Canonical JSON-safe form of one TargetVerdict."""
    return {
        "bin": int(verdict.bin),
        "target": int(verdict.target_ip),
        "ddos": bool(verdict.is_ddos),
        "score": float(verdict.score),
        "rules": [str(r) for r in verdict.matched_rules],
    }


def verdict_from_obj(obj: dict):
    from repro.core.scrubber import TargetVerdict

    return TargetVerdict(
        bin=int(obj["bin"]),
        target_ip=int(obj["target"]),
        is_ddos=bool(obj["ddos"]),
        score=float(obj["score"]),
        matched_rules=tuple(obj["rules"]),
    )


def canonical_entry(tick: int, verdicts: Iterable) -> str:
    """The one byte representation of a tick's emitted verdicts."""
    body = {"tick": int(tick), "verdicts": [verdict_to_obj(v) for v in verdicts]}
    return json.dumps(body, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _frame(body: str) -> bytes:
    encoded = body.encode("utf-8")
    crc = zlib.crc32(encoded) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + encoded + b"\n"


@dataclass(frozen=True)
class JournalEntry:
    """One recovered journal line."""

    tick: int
    body: str  #: the canonical JSON string, exactly as stored

    def verdicts(self) -> list:
        return [verdict_from_obj(o) for o in json.loads(self.body)["verdicts"]]


class VerdictJournal:
    """Append-only, fsync-per-append journal of emitted verdicts."""

    FILENAME = "verdicts.journal"

    def __init__(self, path: Path, entries: list[JournalEntry]):
        self.path = Path(path)
        self.entries = entries
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: Path) -> "VerdictJournal":
        """Open (creating if absent) and recover the journal at ``path``.

        A torn final line is truncated away; corruption anywhere earlier
        raises :class:`CorruptJournalError`.
        """
        path = Path(path)
        entries: list[JournalEntry] = []
        if path.exists():
            raw = path.read_bytes()
            entries, good_bytes = cls._recover(raw, path)
            if good_bytes < len(raw):
                with open(path, "r+b") as fh:
                    fh.truncate(good_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        journal = cls(path, entries)
        fsync_dir(path.parent)
        return journal

    @staticmethod
    def _recover(raw: bytes, path: Path) -> tuple[list[JournalEntry], int]:
        entries: list[JournalEntry] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            line = raw[offset : (len(raw) if newline < 0 else newline)]
            entry = VerdictJournal._parse_line(line)
            if entry is None:
                if newline < 0 or newline == len(raw) - 1:
                    # Torn tail: the crash cut the last append short.
                    return entries, offset
                raise CorruptJournalError(
                    f"{path}: checksum failure at byte {offset} before the "
                    "final line — the journal is corrupt, not merely torn"
                )
            if entries and entry.tick <= entries[-1].tick:
                raise CorruptJournalError(
                    f"{path}: tick {entry.tick} does not increase over "
                    f"{entries[-1].tick} at byte {offset}"
                )
            entries.append(entry)
            if newline < 0:
                # Valid line but the trailing newline is missing: treat
                # the line as committed (its checksum proves it whole).
                return entries, len(raw)
            offset = newline + 1
        return entries, offset

    @staticmethod
    def _parse_line(line: bytes) -> Optional[JournalEntry]:
        if len(line) < 10 or line[8:9] != b" ":
            return None
        try:
            crc = int(line[:8], 16)
        except ValueError:
            return None
        body = line[9:]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return None
        try:
            decoded = body.decode("utf-8")
            tick = json.loads(decoded)["tick"]
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            return None
        return JournalEntry(tick=int(tick), body=decoded)

    # ------------------------------------------------------------------
    @property
    def last_tick(self) -> int:
        """Highest journaled tick, or -1 for an empty journal."""
        return self.entries[-1].tick if self.entries else -1

    def append(self, tick: int, verdicts: Iterable) -> JournalEntry:
        """Durably append one tick's verdicts; returns the new entry."""
        if tick <= self.last_tick:
            raise ValueError(
                f"journal tick must increase: {tick} <= {self.last_tick}"
            )
        body = canonical_entry(tick, verdicts)
        self._fh.write(_frame(body))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        entry = JournalEntry(tick=int(tick), body=body)
        self.entries.append(entry)
        return entry

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "VerdictJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
