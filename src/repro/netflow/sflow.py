"""Binary flow-record interchange, modelled on sFlow v5 flow samples.

IXPs deliver sampled traffic as sFlow datagrams; this module implements
a compact, self-describing binary format covering exactly the fields of
our flow schema — an interchange substrate for feeding captures between
processes without the overhead of CSV or the portability issues of
``.npz``.

Layout (network byte order):

* datagram header: magic ``b"IXSF"``, format version (u16), record
  count (u32), sequence number (u32)
* per record, 34 bytes: time (u64), src_ip (u32), dst_ip (u32),
  src_port (u16), dst_port (u16), protocol (u8), flags (u8, bit 0 =
  blackhole), packets (u32), bytes (u32, saturating), src_mac (u48 as
  6 bytes)

Large flows whose counters exceed the u32 range are stored saturated;
the decoder flags this via :class:`DecodeResult.saturated`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.netflow.dataset import FlowDataset

MAGIC = b"IXSF"
FORMAT_VERSION = 1

_HEADER = struct.Struct("!4sHII")
_RECORD = struct.Struct("!QIIHHBBII6s")

#: Records per datagram (sFlow keeps datagrams under the path MTU; we
#: keep the spirit with a small fixed batch).
RECORDS_PER_DATAGRAM = 256

_U32_MAX = 2**32 - 1


@dataclass(frozen=True)
class DecodeResult:
    """Decoded flows plus transport metadata."""

    flows: FlowDataset
    datagrams: int
    #: True if any counter had been saturated at encode time.
    saturated: bool


def encode_datagrams(flows: FlowDataset, first_sequence: int = 0) -> Iterator[bytes]:
    """Encode ``flows`` as a sequence of binary datagrams."""
    n = len(flows)
    time = flows.time
    src_ip = flows.src_ip
    dst_ip = flows.dst_ip
    src_port = flows.src_port
    dst_port = flows.dst_port
    protocol = flows.protocol
    packets = flows.packets
    bytes_ = flows.bytes
    src_mac = flows.src_mac
    blackhole = flows.blackhole

    sequence = first_sequence
    for lo in range(0, max(n, 1), RECORDS_PER_DATAGRAM):
        hi = min(lo + RECORDS_PER_DATAGRAM, n)
        if n == 0 and lo > 0:
            break
        count = hi - lo
        parts = [_HEADER.pack(MAGIC, FORMAT_VERSION, count, sequence)]
        for i in range(lo, hi):
            flags = 0x01 if blackhole[i] else 0x00
            parts.append(
                _RECORD.pack(
                    int(time[i]),
                    int(src_ip[i]),
                    int(dst_ip[i]),
                    int(src_port[i]),
                    int(dst_port[i]),
                    int(protocol[i]),
                    flags,
                    min(int(packets[i]), _U32_MAX),
                    min(int(bytes_[i]), _U32_MAX),
                    int(src_mac[i]).to_bytes(6, "big"),
                )
            )
        yield b"".join(parts)
        sequence += 1
        if n == 0:
            break


def encode(flows: FlowDataset, first_sequence: int = 0) -> bytes:
    """Encode ``flows`` into one contiguous byte string of datagrams."""
    return b"".join(encode_datagrams(flows, first_sequence=first_sequence))


def decode(payload: bytes) -> DecodeResult:
    """Decode a byte string of datagrams back into a flow dataset.

    Raises ``ValueError`` on bad magic, unsupported versions or
    truncated payloads. Datagram sequence numbers must be contiguous;
    a gap raises (mirroring sFlow collectors' loss accounting).
    """
    offset = 0
    columns: dict[str, list[int]] = {
        name: []
        for name in (
            "time", "src_ip", "dst_ip", "src_port", "dst_port",
            "protocol", "packets", "bytes", "src_mac", "blackhole",
        )
    }
    datagrams = 0
    saturated = False
    expected_sequence: int | None = None
    while offset < len(payload):
        if offset + _HEADER.size > len(payload):
            raise ValueError("truncated datagram header")
        magic, version, count, sequence = _HEADER.unpack_from(payload, offset)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        if expected_sequence is not None and sequence != expected_sequence:
            raise ValueError(
                f"datagram loss detected: expected seq {expected_sequence}, got {sequence}"
            )
        expected_sequence = sequence + 1
        offset += _HEADER.size
        needed = count * _RECORD.size
        if offset + needed > len(payload):
            raise ValueError("truncated datagram body")
        for _ in range(count):
            (
                time, src_ip, dst_ip, src_port, dst_port,
                protocol, flags, packets, bytes_, mac_raw,
            ) = _RECORD.unpack_from(payload, offset)
            offset += _RECORD.size
            if packets == _U32_MAX or bytes_ == _U32_MAX:
                saturated = True
            columns["time"].append(time)
            columns["src_ip"].append(src_ip)
            columns["dst_ip"].append(dst_ip)
            columns["src_port"].append(src_port)
            columns["dst_port"].append(dst_port)
            columns["protocol"].append(protocol)
            columns["packets"].append(packets)
            columns["bytes"].append(bytes_)
            columns["src_mac"].append(int.from_bytes(mac_raw, "big"))
            columns["blackhole"].append(bool(flags & 0x01))
        datagrams += 1
    flows = FlowDataset(
        {
            "time": np.asarray(columns["time"], dtype=np.int64),
            "src_ip": np.asarray(columns["src_ip"], dtype=np.uint32),
            "dst_ip": np.asarray(columns["dst_ip"], dtype=np.uint32),
            "src_port": np.asarray(columns["src_port"], dtype=np.uint16),
            "dst_port": np.asarray(columns["dst_port"], dtype=np.uint16),
            "protocol": np.asarray(columns["protocol"], dtype=np.uint8),
            "packets": np.asarray(columns["packets"], dtype=np.int64),
            "bytes": np.asarray(columns["bytes"], dtype=np.int64),
            "src_mac": np.asarray(columns["src_mac"], dtype=np.uint64),
            "blackhole": np.asarray(columns["blackhole"], dtype=np.bool_),
        }
    )
    return DecodeResult(flows=flows, datagrams=datagrams, saturated=saturated)
