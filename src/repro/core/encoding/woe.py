"""Weight of Evidence (WoE) encoding of categorical features (§5.2.2).

Each value ``x`` of a categorical domain maps to::

    WoE(x) = ln( P(X=x | y=1) / P(X=x | y=0) )

with the division-by-zero handled by add-one smoothing on the class
counts (the paper adds 1.0 to numerator and denominator). Values unseen
during fitting encode as 0.0 (neutral) at prediction time.

WoE tables are built per categorical *domain* (src_ip, src_port,
dst_port, src_mac, protocol), pooling the occurrences of a value across
all rank columns of that domain: an IP's evidence of being a reflector
does not depend on whether it ranked first by bytes or third by packets.
This pooling is also what the paper's reflector-overlap analysis
(Fig. 12, middle: "source IPs with WoE > 1.0") operates on, and it is
the unit of "local knowledge" exchanged (or deliberately *not*
exchanged) in model transfer (§6.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.features import schema
from repro.core.features.aggregation import AggregatedDataset
from repro.obs import names as metric_names

#: WoE assigned to values never seen during fitting (neutral evidence).
UNKNOWN_WOE = 0.0


@dataclass
class WoETable:
    """The fitted WoE mapping of one categorical domain."""

    domain: str
    mapping: dict[int, float] = field(default_factory=dict)

    def encode_value(self, value: int) -> float:
        """WoE of one value; unknown values are neutral (0.0)."""
        return self.mapping.get(int(value), UNKNOWN_WOE)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Vectorised encoding of an int64 value array."""
        unique, inverse = np.unique(values, return_inverse=True)
        encoded = np.fromiter(
            (self.mapping.get(int(v), UNKNOWN_WOE) for v in unique),
            dtype=np.float64,
            count=unique.shape[0],
        )
        return encoded[inverse]

    def high_evidence_values(self, threshold: float = 1.0) -> set[int]:
        """Values with WoE above ``threshold`` (e.g. likely reflectors)."""
        return {v for v, w in self.mapping.items() if w > threshold}

    def set_override(self, value: int, woe: float) -> None:
        """Pin one value's WoE (operator white-/blacklisting, §6.6)."""
        self.mapping[int(value)] = float(woe)


class WoEEncoder:
    """Per-domain WoE tables over the aggregation's categorical columns.

    ``min_count`` guards against label leakage through rare values:
    a value seen fewer than ``min_count`` times in training keeps the
    neutral unknown encoding (0.0). Without this, one-occurrence values
    (ephemeral ports, one-off client IPs) carry a class-pure WoE that
    tree models overfit to — and that evaporates at prediction time when
    fresh values encode as unknown.
    """

    def __init__(self, min_count: int = 5) -> None:
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self.min_count = min_count
        self.tables: dict[str, WoETable] = {}
        # Raw evidence counts, kept so tables can be updated
        # incrementally: domain -> value -> [pos, neg] (floats: decay
        # produces fractional counts).
        self._counts: dict[str, dict[int, list[float]]] = {}
        self._n_pos = 0.0
        self._n_neg = 0.0
        self._fitted = False
        self._epoch = 0

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def epoch(self) -> int:
        """Monotonic table version; bumps on every fit/update."""
        return self._epoch

    def fit(self, data: AggregatedDataset) -> "WoEEncoder":
        """Build WoE tables from labeled aggregated records."""
        self._counts = {}
        self._n_pos = 0.0
        self._n_neg = 0.0
        with obs.span(metric_names.SPAN_ENCODING_WOE_FIT):
            return self.update(data)

    def update(self, data: AggregatedDataset, decay: float = 1.0) -> "WoEEncoder":
        """Incrementally fold new records into the WoE tables.

        ``decay`` (in (0, 1]) exponentially down-weights previously seen
        evidence before adding the new counts — the "forgetting" the
        paper's §6.3 argues incremental learning needs when, e.g.,
        reflector IPs get repurposed legitimately. ``decay=1.0``
        accumulates forever; :meth:`fit` is ``update`` on a reset state.
        Operator overrides (:meth:`WoETable.set_override`) are replayed
        only within the table they were set on and are lost on update;
        re-apply them after updating.
        """
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        labels = data.labels
        if decay < 1.0:
            self._n_pos *= decay
            self._n_neg *= decay
            for counts in self._counts.values():
                for pair in counts.values():
                    pair[0] *= decay
                    pair[1] *= decay
        self._n_pos += float(labels.sum())
        self._n_neg += float((~labels).sum())
        for domain in schema.CATEGORICALS:
            counts = self._counts.setdefault(domain, {})
            for metric in schema.METRICS:
                for rank in range(schema.RANKS):
                    column = data.categorical[schema.key_column(domain, metric, rank)]
                    for class_index, mask in ((0, labels), (1, ~labels)):
                        values, value_counts = np.unique(column[mask], return_counts=True)
                        for v, c in zip(values, value_counts):
                            pair = counts.setdefault(int(v), [0.0, 0.0])
                            pair[class_index] += float(c)
        self._rebuild_tables()
        self._fitted = True
        return self

    def _rebuild_tables(self) -> None:
        slots = schema.RANKS * len(schema.METRICS)
        denom_pos = max(self._n_pos, 1.0) * slots
        denom_neg = max(self._n_neg, 1.0) * slots
        for domain in schema.CATEGORICALS:
            table = WoETable(domain=domain)
            for value, (pos, neg) in self._counts.get(domain, {}).items():
                if pos + neg < self.min_count:
                    continue  # rare value: stays at the neutral encoding
                p_pos = (pos + 1.0) / (denom_pos + 1.0)
                p_neg = (neg + 1.0) / (denom_neg + 1.0)
                table.mapping[value] = math.log(p_pos / p_neg)
            self.tables[domain] = table
        self._epoch += 1

    def table(self, domain: str) -> WoETable:
        if not self._fitted:
            raise RuntimeError("WoEEncoder is not fitted")
        return self.tables[domain]

    def encode_column(self, column_name: str, values: np.ndarray) -> np.ndarray:
        """Encode one key column through its domain table."""
        domain, _, _, is_value = schema.parse_column(column_name)
        if is_value:
            raise ValueError(f"{column_name} is a metric column, not categorical")
        return self.table(domain).encode(values)

    def transform(self, data: AggregatedDataset) -> dict[str, np.ndarray]:
        """Encode all categorical columns of ``data``."""
        return {
            name: self.encode_column(name, values)
            for name, values in data.categorical.items()
        }

    def freeze(self) -> "FrozenWoE":
        """Snapshot the fitted tables into a :class:`FrozenWoE` view.

        The frozen view trades mutability for speed: per-domain sorted
        key/WoE arrays answer lookups via ``searchsorted`` instead of a
        per-value dict probe, which is what the sharded streaming path
        reuses across every bin of a retrain epoch. Later ``update``
        calls or operator overrides are *not* reflected — re-freeze
        after each retrain (``FrozenWoE.is_stale`` tells you when).
        """
        if not self._fitted:
            raise RuntimeError("WoEEncoder is not fitted")
        return FrozenWoE(self)


class FrozenWoE:
    """Immutable, vectorised lookup view over a fitted :class:`WoEEncoder`.

    Encodes exactly like the live encoder (same float64 WoE values,
    unknown values map to :data:`UNKNOWN_WOE`) but with O(log n) array
    lookups and no per-call table construction. Built once per retrain
    epoch via :meth:`WoEEncoder.freeze`.
    """

    def __init__(self, encoder: WoEEncoder):
        self._epoch = encoder.epoch
        self._source = encoder
        self._keys: dict[str, np.ndarray] = {}
        self._woes: dict[str, np.ndarray] = {}
        for domain, table in encoder.tables.items():
            items = sorted(table.mapping.items())
            self._keys[domain] = np.fromiter(
                (k for k, _ in items), dtype=np.int64, count=len(items)
            )
            self._woes[domain] = np.fromiter(
                (w for _, w in items), dtype=np.float64, count=len(items)
            )

    @property
    def epoch(self) -> int:
        """The encoder epoch this view was frozen at."""
        return self._epoch

    def is_stale(self) -> bool:
        """True once the source encoder has been refit/updated since."""
        return self._source.epoch != self._epoch

    def encode_domain(self, domain: str, values: np.ndarray) -> np.ndarray:
        """Vectorised WoE lookup for one domain's value array."""
        keys = self._keys[domain]
        out = np.full(values.shape[0], UNKNOWN_WOE, dtype=np.float64)
        if keys.size == 0:
            return out
        v = values.astype(np.int64, copy=False)
        idx = np.minimum(np.searchsorted(keys, v), keys.size - 1)
        known = keys[idx] == v
        out[known] = self._woes[domain][idx[known]]
        return out

    def encode_column(self, column_name: str, values: np.ndarray) -> np.ndarray:
        """Encode one key column through its domain's frozen table."""
        domain, _, _, is_value = schema.parse_column(column_name)
        if is_value:
            raise ValueError(f"{column_name} is a metric column, not categorical")
        return self.encode_domain(domain, values)

    def transform(self, data: AggregatedDataset) -> dict[str, np.ndarray]:
        """Encode all categorical columns of ``data``."""
        return {
            name: self.encode_column(name, values)
            for name, values in data.categorical.items()
        }
