"""Observability layer for the scrubber pipeline (``repro.obs``).

A dependency-free metrics-and-tracing substrate for the continuously
learning scrubber (paper §6.3): an operator running daily retraining and
per-minute classification needs counters, latency distributions, and
phase timings to trust verdicts. The layer has three parts:

* :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms
  with percentile estimates, collected in a :class:`MetricRegistry`;
  a contextvar selects the *active* registry so components can own
  their metrics (``StreamingScrubber``) while library code below them
  records transparently into whichever registry is active;
* :mod:`repro.obs.spans` — nested phase timers tracing the
  ingest → bin-close → aggregate → encode → classify → retrain path;
* :mod:`repro.obs.export` — pluggable sinks: JSON-lines snapshots,
  Prometheus-style text exposition, and the human-readable rendering
  behind ``repro stats``.

Every emitted name lives in :mod:`repro.obs.names` and is documented in
``docs/METRICS.md`` (enforced by ``tests/test_docs_lint.py``). A global
:func:`disable` switch turns all instrumentation into no-ops; the
benchmark ``benchmarks/test_bench_obs_overhead.py`` keeps the enabled
cost under 5 % on the core-ops path.

Quick tour::

    from repro import obs
    from repro.obs import names

    reg = obs.MetricRegistry()
    with obs.use_registry(reg):
        with obs.span(names.SPAN_STREAMING_INGEST):
            obs.counter(names.C_STREAMING_FLOWS_INGESTED).inc(1024)
    print(obs.format_snapshot(reg))
"""

from repro.obs import names
from repro.obs.export import (
    JsonLinesExporter,
    format_snapshot,
    merge_snapshots,
    prometheus_text,
    read_jsonl,
    snapshot,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    counter,
    default_registry,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    is_enabled,
    use_registry,
)
from repro.obs.spans import SpanAggregate, SpanTracker, span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLinesExporter",
    "MetricRegistry",
    "SpanAggregate",
    "SpanTracker",
    "counter",
    "default_registry",
    "disable",
    "enable",
    "format_snapshot",
    "gauge",
    "get_registry",
    "histogram",
    "is_enabled",
    "merge_snapshots",
    "names",
    "prometheus_text",
    "read_jsonl",
    "snapshot",
    "span",
    "use_registry",
]
