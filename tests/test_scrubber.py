"""End-to-end tests for the two-step IXP Scrubber."""

import numpy as np
import pytest

from repro.core.models.metrics import fbeta_score
from repro.core.rules.model import RuleStatus
from repro.core.scrubber import IXPScrubber, ScrubberConfig


@pytest.fixture(scope="module")
def fitted_scrubber_and_flows():
    """A scrubber fitted on a tiny vantage point (module-scoped: slow)."""
    import numpy as np

    from repro.core.labeling import balance, label_capture
    from repro.ixp.fabric import IXPFabric
    from repro.ixp.profiles import IXPProfile
    from repro.traffic.workload import WorkloadGenerator

    profile = IXPProfile(
        name="IXP-TEST", region=7, n_members=8, traffic_scale=0.01,
        attacks_per_day=12.0, attack_intensity=25.0,
        benign_flows_per_target=5.0, benign_targets_per_minute=24,
        bins_per_day=48, seed=42,
    )
    fabric = IXPFabric(profile)
    capture = WorkloadGenerator(fabric).generate(0, 3)
    balanced = balance(label_capture(capture), np.random.default_rng(1))
    scrubber = IXPScrubber(ScrubberConfig(model="XGB", model_params={"n_estimators": 20}))
    scrubber.fit(balanced.flows)
    return scrubber, balanced.flows


class TestFit:
    def test_rules_mined(self, fitted_scrubber_and_flows):
        scrubber, _ = fitted_scrubber_and_flows
        assert len(scrubber.rule_set) > 0
        assert len(scrubber.accepted_rules) > 0

    def test_predict_flows_returns_verdicts(self, fitted_scrubber_and_flows):
        scrubber, flows = fitted_scrubber_and_flows
        verdicts = scrubber.predict_flows(flows)
        assert len(verdicts) > 0
        assert any(v.is_ddos for v in verdicts)
        assert any(not v.is_ddos for v in verdicts)
        for v in verdicts[:20]:
            assert 0.0 <= v.score <= 1.0

    def test_training_performance(self, fitted_scrubber_and_flows):
        """In-sample performance must be high (sanity bound)."""
        scrubber, flows = fitted_scrubber_and_flows
        data = scrubber.aggregate_flows(flows)
        predictions = scrubber.predict_aggregated(data)
        assert fbeta_score(data.labels.astype(int), predictions) > 0.9

    def test_generate_acls(self, fitted_scrubber_and_flows):
        scrubber, flows = fitted_scrubber_and_flows
        verdicts = scrubber.predict_flows(flows)
        acls = scrubber.generate_acls(verdicts)
        accepted_ids = {r.rule_id for r in scrubber.accepted_rules}
        assert all(r.rule_id in accepted_ids for r in acls)
        positive_rules = {
            rule_id for v in verdicts if v.is_ddos for rule_id in v.matched_rules
        }
        assert {r.rule_id for r in acls} == positive_rules

    def test_score_aggregated_probabilities(self, fitted_scrubber_and_flows):
        scrubber, flows = fitted_scrubber_and_flows
        data = scrubber.aggregate_flows(flows)
        scores = scrubber.score_aggregated(data)
        assert ((scores >= 0) & (scores <= 1)).all()


class TestUnfitted:
    def test_predict_requires_fit(self, handmade_flows):
        with pytest.raises(RuntimeError):
            IXPScrubber().predict_flows(handmade_flows)

    def test_feature_matrix_requires_woe(self, handmade_flows):
        from repro.core.features.aggregation import aggregate

        scrubber = IXPScrubber()
        with pytest.raises(RuntimeError):
            scrubber.feature_matrix(aggregate(handmade_flows))


class TestCuration:
    def test_manual_curation_honoured(self, fitted_scrubber_and_flows):
        scrubber, flows = fitted_scrubber_and_flows
        rule = scrubber.accepted_rules[0]
        scrubber.rule_set.set_status(rule.rule_id, RuleStatus.DECLINE)
        try:
            assert rule.rule_id not in {r.rule_id for r in scrubber.accepted_rules}
        finally:
            scrubber.rule_set.set_status(rule.rule_id, RuleStatus.ACCEPT)

    def test_no_auto_accept_config(self, handmade_flows):
        scrubber = IXPScrubber(ScrubberConfig(auto_accept_rules=False, min_support=0.01))
        records = [handmade_flows.record(i) for i in range(len(handmade_flows))]
        from repro.netflow.dataset import FlowDataset

        # Repeat the handmade flows to clear min support thresholds.
        flows = FlowDataset.concat([handmade_flows] * 20)
        scrubber.mine_tagging_rules(flows)
        assert scrubber.accepted_rules == []
        assert len(scrubber.rule_set.staged()) > 0


class TestTransfer:
    def test_transfer_keeps_local_woe(self, fitted_scrubber_and_flows):
        scrubber, flows = fitted_scrubber_and_flows
        other = IXPScrubber(ScrubberConfig(model="XGB", model_params={"n_estimators": 5}))
        data = scrubber.aggregate_flows(flows)
        other.fit_aggregated(data)
        transferred = scrubber.transfer_classifier_from(other)
        assert transferred.woe is scrubber.woe
        assert transferred.pipeline is other.pipeline
        predictions = transferred.predict_aggregated(data)
        assert predictions.shape == (len(data),)

    def test_transfer_requires_fitted_source(self, fitted_scrubber_and_flows):
        scrubber, _ = fitted_scrubber_and_flows
        with pytest.raises(RuntimeError):
            scrubber.transfer_classifier_from(IXPScrubber())

    def test_transfer_requires_local_woe(self, fitted_scrubber_and_flows):
        scrubber, _ = fitted_scrubber_and_flows
        with pytest.raises(RuntimeError):
            IXPScrubber().transfer_classifier_from(scrubber)
