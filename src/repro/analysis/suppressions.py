"""Inline suppressions: ``# repro: lint-ignore[RS101] reason``.

Grammar (one comment, one or more rule ids, a mandatory reason)::

    x = time.time()  # repro: lint-ignore[RS101] operator-facing timing only
    # repro: lint-ignore[RS103,RS104] commutative fold; order never escapes
    for item in set(items):
        ...

A trailing comment suppresses matching findings on its own physical
line; a comment alone on a line suppresses the next non-blank,
non-comment line. The reason is required — a suppression without one
(or naming an unknown rule id) is itself a finding (``RS001``), and a
suppression that matches nothing is flagged as stale (``RS002``), so
ignores can never silently outlive the violation they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, rule_exists

__all__ = ["Suppression", "scan_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ignore\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)


@dataclass
class Suppression:
    """One parsed lint-ignore comment."""

    path: str
    line: int  # line the comment sits on (1-based)
    target_line: int  # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        return (
            finding.path == self.path
            and finding.line == self.target_line
            and finding.rule in self.rules
        )


def _next_code_line(lines: list[str], after: int) -> int:
    """1-based number of the next non-blank, non-comment line."""
    for offset in range(after, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return after  # comment at EOF: degenerate, points past the file


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """(line, col, text) of every real comment token.

    Tokenizing (rather than regex over raw lines) keeps lint-ignore
    examples inside docstrings and string literals from being parsed
    as live suppressions.
    """
    out: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError):
        pass  # file already parsed as AST; truncated tail only
    return out


def scan_suppressions(
    path: str, source: str
) -> tuple[list[Suppression], list[Finding]]:
    """Parse every lint-ignore comment in one file.

    Returns the valid suppressions plus RS001 findings for malformed
    ones (empty reason, empty or unknown rule ids).
    """
    suppressions: list[Suppression] = []
    malformed: list[Finding] = []
    lines = source.splitlines()
    for lineno, col, text in _comment_tokens(source):
        match = _PATTERN.search(text)
        if match is None:
            continue
        idx = lineno - 1
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = match.group("reason").strip()
        problems = []
        if not rules:
            problems.append("no rule ids")
        unknown = [r for r in rules if not rule_exists(r)]
        if unknown:
            problems.append(f"unknown rule id(s) {', '.join(unknown)}")
        if not reason:
            problems.append("missing reason")
        if problems:
            malformed.append(
                Finding(
                    rule="RS001",
                    path=path,
                    line=lineno,
                    col=col + match.start() + 1,
                    message=(
                        "malformed suppression: " + "; ".join(problems)
                        + " — use '# repro: lint-ignore[RSnnn] reason'"
                    ),
                    key=f"suppression:{lineno}",
                )
            )
            continue
        trailing = lines[idx][:col].strip() != ""
        target = lineno if trailing else _next_code_line(lines, idx + 1)
        suppressions.append(
            Suppression(
                path=path,
                line=lineno,
                target_line=target,
                rules=rules,
                reason=reason,
            )
        )
    return suppressions, malformed
