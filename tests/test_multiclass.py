"""Tests for the multi-label rule-tag predictor (§5.2.2 extension)."""

import numpy as np
import pytest

from repro.core.features.aggregation import aggregate
from repro.core.multiclass import RuleTagPredictor
from repro.core.rules.model import PortMatch, TaggingRule
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


def build_corpus(n_bins=120, seed=0):
    """Alternating NTP / DNS attacks plus benign noise, annotated with
    two per-vector rules."""
    rng = np.random.default_rng(seed)
    records = []
    for b in range(n_bins):
        t = b * 60
        port = 123 if b % 2 == 0 else 53
        size = 23400 if port == 123 else 55000
        for k in range(4):
            records.append(
                make_flow(time=t + k, src_ip=int(rng.integers(1000, 1100)),
                          dst_ip=1 + (b % 3), src_port=port,
                          packets=50, bytes_=size, blackhole=True)
            )
        records.append(
            make_flow(time=t + 10, src_ip=int(rng.integers(5000, 5100)),
                      dst_ip=50 + (b % 5), src_port=443, protocol=6,
                      packets=8, bytes_=9600)
        )
    rules = [
        TaggingRule(rule_id="ntp-rule", confidence=0.99, support=0.1,
                    protocol=17, port_src=PortMatch(values=frozenset({123}))),
        TaggingRule(rule_id="dns-rule", confidence=0.99, support=0.1,
                    protocol=17, port_src=PortMatch(values=frozenset({53}))),
    ]
    return aggregate(FlowDataset.from_records(records), rules=rules)


class TestRuleTagPredictor:
    @pytest.fixture(scope="class")
    def fitted(self):
        data = build_corpus()
        half = int(np.quantile(data.bins, 0.5))
        train, test = data.time_split(half)
        predictor = RuleTagPredictor(min_support=5, n_estimators=10, max_depth=3)
        predictor.fit(train)
        return predictor, test

    def test_models_both_rules(self, fitted):
        predictor, _ = fitted
        assert set(predictor.modelled_rules) == {"ntp-rule", "dns-rule"}

    def test_predicts_matching_rules(self, fitted):
        predictor, test = fitted
        reports = predictor.evaluate(test)
        for report in reports:
            assert report.support > 0
            assert report.precision > 0.8, report
            assert report.recall > 0.8, report

    def test_benign_records_get_no_tags(self, fitted):
        predictor, test = fitted
        predicted = predictor.predict_tags(test)
        benign = ~test.labels
        wrong = sum(1 for i in np.flatnonzero(benign) if predicted[i])
        assert wrong / max(int(benign.sum()), 1) < 0.2

    def test_requires_annotations(self, handmade_flows):
        data = aggregate(handmade_flows)  # no rules
        with pytest.raises(ValueError, match="annotations"):
            RuleTagPredictor().fit(data)

    def test_requires_fit(self):
        data = build_corpus(n_bins=4)
        with pytest.raises(RuntimeError):
            RuleTagPredictor().predict_tags(data)

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            RuleTagPredictor(min_support=0)

    def test_rare_rules_skipped(self):
        data = build_corpus(n_bins=30)
        predictor = RuleTagPredictor(min_support=10**6)
        predictor.fit(data)
        assert predictor.modelled_rules == ()
        assert all(tags == () for tags in predictor.predict_tags(data))
