"""Experiment E-ABL: ablations of the pipeline's design choices.

DESIGN.md calls out three load-bearing decisions beyond the paper's own
comparisons; each is ablated here on the merged corpus with the
recommended XGB model:

* **encoding** — WoE versus feeding raw categorical codes to the
  classifier. The paper's claim: the pipeline (encoding included)
  matters more than the model choice. The evaluation uses a *temporal*
  split (train on the first ~2/3 of days, test on the rest): raw codes
  memorise concrete reflector addresses and port values, which works on
  an i.i.d. split but decays under drift; WoE abstracts them.
* **woe-min-count** — the rare-value guard of our WoE implementation.
  Without it (min_count=1), one-occurrence values carry class-pure
  evidence the trees memorise, which evaporates on fresh data.
* **rank-resolution** — the paper uses r=5 ranks per (categorical,
  metric) cell; we sweep r in {1, 3, 5} by masking columns.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features import schema
from repro.core.models.metrics import fbeta_score
from repro.core.models.pipeline import make_pipeline
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import DAYS_BY_SCALE, aggregated_corpus, merged_corpus
from repro.ixp.profiles import IXP_CE1, IXP_US1


def _evaluate(X_train, y_train, X_test, y_test) -> float:
    pipeline = make_pipeline("XGB")
    pipeline.fit(X_train, y_train)
    return fbeta_score(y_test, pipeline.predict(X_test))


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    merged = merged_corpus(scale)
    # Temporal split: the ablated properties (leakage, abstraction of
    # drifting identifiers) only show up when the test period lies
    # *after* the training period.
    boundary = int(np.quantile(merged.bins, 0.7))
    train, test = merged.time_split(boundary)
    y_train = train.labels.astype(int)
    y_test = test.labels.astype(int)

    result = ExperimentResult(experiment="ablations")

    # ------------------------------------------------------------------
    # 1. Encoding: WoE vs raw categorical codes.
    # ------------------------------------------------------------------
    woe = WoEEncoder().fit(train)
    matrix_train = assemble(train, woe)
    matrix_test = assemble(test, woe)
    score_woe = _evaluate(matrix_train.X, y_train, matrix_test.X, y_test)
    result.rows.append(
        {"ablation": "encoding", "variant": "WoE (paper)", "fbeta": score_woe}
    )

    def raw_matrix(data):
        columns = list(matrix_train.columns)
        X = np.empty((len(data), len(columns)))
        for j, name in enumerate(columns):
            if name in data.categorical:
                X[:, j] = data.categorical[name].astype(np.float64)
            else:
                X[:, j] = data.metrics[name]
        return X

    score_raw = _evaluate(raw_matrix(train), y_train, raw_matrix(test), y_test)
    result.rows.append(
        {"ablation": "encoding", "variant": "raw categorical codes", "fbeta": score_raw}
    )

    # ------------------------------------------------------------------
    # 2. WoE rare-value guard (min_count).
    # ------------------------------------------------------------------
    for min_count in (1, 5):
        encoder = WoEEncoder(min_count=min_count).fit(train)
        score = _evaluate(
            assemble(train, encoder).X, y_train, assemble(test, encoder).X, y_test
        )
        label = f"min_count={min_count}" + (" (default)" if min_count == 5 else "")
        result.rows.append(
            {"ablation": "woe-min-count", "variant": label, "fbeta": score}
        )

    # ------------------------------------------------------------------
    # 3. Rank resolution r.
    # ------------------------------------------------------------------
    for r in (1, 3, 5):
        keep_columns = [
            name
            for name in matrix_train.columns
            if schema.parse_column(name)[2] < r
        ]
        keep_index = [matrix_train.column_index(c) for c in keep_columns]
        score = _evaluate(
            matrix_train.X[:, keep_index],
            y_train,
            matrix_test.X[:, keep_index],
            y_test,
        )
        label = f"r={r}" + (" (paper)" if r == 5 else "")
        result.rows.append(
            {"ablation": "rank-resolution", "variant": label, "fbeta": score}
        )

    # ------------------------------------------------------------------
    # 4. Encoding under geographic transfer: train at IXP-CE1, test at
    # IXP-US1. WoE re-localises (fit the destination's own tables, move
    # only the classifier, §6.4); raw categorical codes have no
    # adaptation mechanism — the learned address intervals point at the
    # wrong region.
    # ------------------------------------------------------------------
    n_days = DAYS_BY_SCALE[scale]
    src_site = aggregated_corpus(IXP_CE1, n_days)
    dst_site = aggregated_corpus(IXP_US1, n_days)
    dst_boundary = int(np.quantile(dst_site.bins, 0.5))
    dst_fit, dst_test = dst_site.time_split(dst_boundary)
    y_src = src_site.labels.astype(int)
    y_dst = dst_test.labels.astype(int)

    woe_src = WoEEncoder().fit(src_site)
    woe_dst = WoEEncoder().fit(dst_fit)
    pipeline = make_pipeline("XGB")
    pipeline.fit(assemble(src_site, woe_src).X, y_src)
    score_woe_transfer = fbeta_score(
        y_dst, pipeline.predict(assemble(dst_test, woe_dst).X)
    )
    result.rows.append(
        {
            "ablation": "encoding-transfer",
            "variant": "WoE, re-localised (paper)",
            "fbeta": score_woe_transfer,
        }
    )
    raw_pipeline = make_pipeline("XGB")
    raw_pipeline.fit(raw_matrix(src_site), y_src)
    score_raw_transfer = fbeta_score(y_dst, raw_pipeline.predict(raw_matrix(dst_test)))
    result.rows.append(
        {
            "ablation": "encoding-transfer",
            "variant": "raw categorical codes",
            "fbeta": score_raw_transfer,
        }
    )

    by_key = {(row["ablation"], row["variant"]): row["fbeta"] for row in result.rows}
    result.notes["woe_vs_raw_delta"] = score_woe - score_raw
    result.notes["woe_vs_raw_transfer_delta"] = (
        score_woe_transfer - score_raw_transfer
    )
    result.notes["min_count_guard_delta"] = (
        by_key[("woe-min-count", "min_count=5 (default)")]
        - by_key[("woe-min-count", "min_count=1")]
    )
    result.notes["r5_vs_r1_delta"] = (
        by_key[("rank-resolution", "r=5 (paper)")]
        - by_key[("rank-resolution", "r=1")]
    )
    return result
