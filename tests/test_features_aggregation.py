"""Tests for flow -> per-target aggregation (Fig. 7)."""

import numpy as np
import pytest

from repro.core.features import schema
from repro.core.features.aggregation import AggregatedDataset, aggregate
from repro.core.rules.model import PortMatch, TaggingRule
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


class TestAggregate:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate(FlowDataset.empty())

    def test_group_count(self, handmade_flows):
        data = aggregate(handmade_flows)
        # (bin 0: targets 100, 200), (bin 1: targets 100, 300).
        assert len(data) == 4

    def test_labels_any_blackhole(self, handmade_flows):
        data = aggregate(handmade_flows)
        by_key = {
            (int(data.bins[i]), int(data.targets[i])): bool(data.labels[i])
            for i in range(len(data))
        }
        assert by_key[(0, 100)] is True
        assert by_key[(0, 200)] is False
        assert by_key[(1, 100)] is True
        assert by_key[(1, 300)] is False

    def test_n_flows(self, handmade_flows):
        data = aggregate(handmade_flows)
        by_key = {
            (int(data.bins[i]), int(data.targets[i])): int(data.n_flows[i])
            for i in range(len(data))
        }
        assert by_key[(0, 100)] == 3
        assert by_key[(1, 300)] == 4

    def test_ranking_by_bytes(self, handmade_flows):
        """Top source port by bytes in bin 0 / target 100 must be 123."""
        data = aggregate(handmade_flows)
        idx = next(
            i for i in range(len(data))
            if data.bins[i] == 0 and data.targets[i] == 100
        )
        top_port = data.categorical[schema.key_column("src_port", "bytes", 0)][idx]
        top_bytes = data.metrics[schema.value_column("src_port", "bytes", 0)][idx]
        assert top_port == 123
        assert top_bytes == 23400 + 18720  # both NTP flows summed per key

    def test_rank_aggregates_per_key(self):
        """Two flows from the same source IP aggregate into one rank."""
        flows = FlowDataset.from_records(
            [
                make_flow(time=0, src_ip=7, dst_ip=1, packets=10, bytes_=1000),
                make_flow(time=1, src_ip=7, dst_ip=1, packets=30, bytes_=3000),
                make_flow(time=2, src_ip=8, dst_ip=1, packets=5, bytes_=500),
            ]
        )
        data = aggregate(flows)
        assert len(data) == 1
        assert data.categorical[schema.key_column("src_ip", "bytes", 0)][0] == 7
        assert data.metrics[schema.value_column("src_ip", "bytes", 0)][0] == 4000
        assert data.categorical[schema.key_column("src_ip", "bytes", 1)][0] == 8

    def test_missing_ranks_marked(self):
        flows = FlowDataset.from_records([make_flow(time=0, dst_ip=1)])
        data = aggregate(flows)
        # Only one distinct source IP -> ranks 1..4 missing.
        assert data.categorical[schema.key_column("src_ip", "bytes", 1)][0] == schema.MISSING_KEY
        assert np.isnan(data.metrics[schema.value_column("src_ip", "bytes", 1)][0])

    def test_weighted_mean_packet_size(self):
        flows = FlowDataset.from_records(
            [
                make_flow(time=0, src_ip=7, dst_ip=1, packets=1, bytes_=100),
                make_flow(time=1, src_ip=7, dst_ip=1, packets=3, bytes_=900),
            ]
        )
        data = aggregate(flows)
        size = data.metrics[schema.value_column("src_ip", "packet_size", 0)][0]
        assert size == pytest.approx(1000 / 4)

    def test_feature_count(self, handmade_flows):
        data = aggregate(handmade_flows)
        assert len(data.feature_names) == 150

    def test_rule_annotations(self, handmade_flows):
        rule = TaggingRule(
            rule_id="ntp1", confidence=0.99, support=0.1,
            protocol=17, port_src=PortMatch(values=frozenset({123})),
        )
        data = aggregate(handmade_flows, rules=[rule])
        by_key = {
            (int(data.bins[i]), int(data.targets[i])): data.rule_tags[i]
            for i in range(len(data))
        }
        assert by_key[(0, 100)] == ("ntp1",)
        assert by_key[(0, 200)] == ()

    def test_no_rules_no_annotations(self, handmade_flows):
        assert aggregate(handmade_flows).rule_tags is None


class TestAggregatedDataset:
    def test_select_mask(self, handmade_flows):
        data = aggregate(handmade_flows)
        subset = data.select(data.labels)
        assert len(subset) == int(data.labels.sum())
        assert subset.labels.all()

    def test_concat(self, handmade_flows):
        data = aggregate(handmade_flows)
        merged = AggregatedDataset.concat([data, data])
        assert len(merged) == 2 * len(data)
        assert merged.feature_names == data.feature_names

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregatedDataset.concat([])

    def test_time_split(self, handmade_flows):
        data = aggregate(handmade_flows)
        before, after = data.time_split(1)
        assert (before.bins < 1).all()
        assert (after.bins >= 1).all()
        assert len(before) + len(after) == len(data)

    def test_blackhole_share(self, handmade_flows):
        data = aggregate(handmade_flows)
        assert data.blackhole_share == pytest.approx(0.5)

    def test_select_keeps_rule_tags(self, handmade_flows):
        rule = TaggingRule(
            rule_id="ntp1", confidence=0.99, support=0.1,
            protocol=17, port_src=PortMatch(values=frozenset({123})),
        )
        data = aggregate(handmade_flows, rules=[rule])
        subset = data.select(data.labels)
        assert len(subset.rule_tags) == len(subset)


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=300),  # time
            st.integers(min_value=1, max_value=5),  # dst ip
            st.integers(min_value=1, max_value=8),  # src ip
            st.sampled_from([53, 123, 443, 4444]),  # src port
            st.integers(min_value=1, max_value=50),  # packets
            st.booleans(),  # blackhole
        ),
        min_size=1,
        max_size=80,
    )
)
def test_aggregation_invariants(rows):
    """Property test: aggregation partitions flows, labels are ORs of
    flow labels, and rankings are sorted descending."""
    flows = FlowDataset.from_records(
        [
            make_flow(
                time=t, dst_ip=dst, src_ip=src, src_port=port,
                packets=packets, bytes_=packets * 500, blackhole=bh,
            )
            for t, dst, src, port, packets, bh in rows
        ]
    )
    data = aggregate(flows)

    # Partition: every flow lands in exactly one record.
    assert int(data.n_flows.sum()) == len(flows)

    # Labels: record is positive iff any of its flows is blackholed.
    bins = flows.time_bin()
    for i in range(len(data)):
        mask = (bins == data.bins[i]) & (flows.dst_ip == data.targets[i])
        assert bool(data.labels[i]) == bool(flows.blackhole[mask].any())

    # Rankings: metric values descending, missing ranks trail.
    for cat in schema.CATEGORICALS:
        for metric in schema.METRICS:
            previous = None
            for r in range(schema.RANKS):
                value = data.metrics[schema.value_column(cat, metric, r)]
                key = data.categorical[schema.key_column(cat, metric, r)]
                for i in range(len(data)):
                    v = value[i]
                    if key[i] == schema.MISSING_KEY:
                        assert np.isnan(v)
                    elif r > 0:
                        prev = data.metrics[schema.value_column(cat, metric, r - 1)][i]
                        if not np.isnan(prev):
                            assert v <= prev + 1e-9
