#!/usr/bin/env python
"""Online deployment: the streaming engine detecting attacks live.

Runs :class:`repro.core.streaming.StreamingScrubber` — the paper's
recommended operating mode (§6.3): retrain daily on a trailing window
of balanced blackholing data, classify every significant per-minute
target aggregate as traffic arrives. The engine sees flows and the BGP
feed in arrival order, chunk by chunk; detections are scored against
the simulation's ground-truth attack events, including latency.

Run:  python examples/live_detection.py
"""

import numpy as np

from repro import IXP_US1, IXPFabric, WorkloadGenerator
from repro.core.scrubber import ScrubberConfig
from repro.core.streaming import StreamingScrubber
from repro.netflow.record import int_to_ip

DAYS = 4
CHUNK_BINS = 8  # feed the engine in 8-minute chunks


def main() -> None:
    profile = IXP_US1
    fabric = IXPFabric(profile)
    capture = WorkloadGenerator(fabric).generate(0, DAYS)
    print(f"=== Streaming {DAYS} days of {profile.name} "
          f"({len(capture.flows):,} flows, {len(capture.updates)} BGP updates) ===")

    engine = StreamingScrubber(
        config=ScrubberConfig(),
        window_days=2,
        bins_per_day=profile.bins_per_day,
        min_flows_per_verdict=10,
        seed=7,
    )

    flows = capture.flows
    updates = sorted(capture.updates, key=lambda u: u.time)
    bins = flows.time // 60
    verdicts = []
    u = 0
    for start in range(int(bins.min()), int(bins.max()) + 1, CHUNK_BINS):
        mask = (bins >= start) & (bins < start + CHUNK_BINS)
        chunk_updates = []
        limit = (start + CHUNK_BINS) * 60
        while u < len(updates) and updates[u].time < limit:
            chunk_updates.append(updates[u])
            u += 1
        verdicts.extend(engine.ingest(flows.select(mask), chunk_updates))
    verdicts.extend(engine.flush())

    stats = engine.stats
    print(f"bins closed:       {stats.bins_closed}")
    print(f"model retrainings: {stats.retrainings} "
          f"(last on {stats.training_flows:,} balanced flows)")
    print(f"verdicts emitted:  {stats.verdicts_emitted} "
          f"({stats.ddos_verdicts} DDoS)")

    # Score against ground truth, after the bootstrap day.
    warmup_end = profile.seconds_per_day
    truth: dict[int, int] = {}
    for event in capture.events:
        if event.start >= warmup_end:
            truth[event.victim] = min(truth.get(event.victim, event.start), event.start)
    detected: dict[int, int] = {}
    for v in verdicts:
        t = v.bin * 60
        if v.is_ddos and t >= warmup_end and v.target_ip not in detected:
            detected[v.target_ip] = t

    hits = set(truth) & set(detected)
    false_alarms = set(detected) - {e.victim for e in capture.events}
    print(f"\nattacks after warm-up:    {len(truth)}")
    print(f"victims detected:         {len(hits)} "
          f"({len(hits) / max(len(truth), 1):.0%} recall)")
    print(f"false-alarm targets:      {len(false_alarms)}")
    latencies = [detected[v] - truth[v] for v in hits]
    if latencies:
        print(f"median detection latency: {np.median(latencies):.0f} s "
              f"(negative = same first minute, bin rounding)")

    print("\nfirst five detections:")
    for victim in sorted(hits, key=lambda v: detected[v])[:5]:
        print(f"  {int_to_ip(victim):>15s}  attack t+{detected[victim] - truth[victim]:>4d}s")


if __name__ == "__main__":
    main()
