"""Text rendering of the rule-curation UI (paper Fig. 6).

The paper's operators review mined rules in a web table showing header
fields, confidence, antecedent support, status and notes, with sorting
and filtering. This module renders the same view as aligned text for
terminals and reports, with the UI's column sorting and status
filtering.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.rules.model import RuleSet, RuleStatus, TaggingRule

#: Column definitions: header -> value extractor.
_COLUMNS: dict[str, Callable[[TaggingRule], str]] = {
    "id": lambda r: r.rule_id,
    "protocol": lambda r: str(r.protocol) if r.protocol is not None else "*",
    "port_src": lambda r: r.port_src.render() if r.port_src else "*",
    "port_dst": lambda r: r.port_dst.render() if r.port_dst else "*",
    "packet_size": lambda r: (
        f"({r.packet_size[0]},{r.packet_size[1]}]" if r.packet_size else "*"
    ),
    "confidence": lambda r: f"{r.confidence:.5f}",
    "support": lambda r: f"{r.support:.5f}",
    "status": lambda r: r.status.value,
    "notes": lambda r: r.notes,
}

#: Sort keys available to the UI (mirroring its sortable columns).
_SORT_KEYS: dict[str, Callable[[TaggingRule], object]] = {
    "id": lambda r: r.rule_id,
    "confidence": lambda r: -r.confidence,
    "support": lambda r: -r.support,
    "protocol": lambda r: r.protocol if r.protocol is not None else -1,
    "status": lambda r: r.status.value,
}


def _truncate(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 3] + "..."


def render_rule_table(
    rules: RuleSet | Iterable[TaggingRule],
    sort_by: str = "support",
    status: Optional[RuleStatus] = None,
    limit: Optional[int] = None,
    max_cell_width: int = 28,
) -> str:
    """Render rules as an aligned text table.

    ``sort_by`` picks one of the UI's sortable columns; ``status``
    filters to one curation state; ``limit`` caps the row count.
    """
    if sort_by not in _SORT_KEYS:
        raise ValueError(f"sort_by must be one of {sorted(_SORT_KEYS)}")
    selected = [r for r in rules if status is None or r.status == status]
    selected.sort(key=_SORT_KEYS[sort_by])
    if limit is not None:
        selected = selected[:limit]

    headers = list(_COLUMNS)
    body = [
        [_truncate(extractor(rule), max_cell_width) for extractor in _COLUMNS.values()]
        for rule in selected
    ]
    widths = [
        max(len(headers[j]), *(len(row[j]) for row in body)) if body else len(headers[j])
        for j in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if not body:
        lines.append("(no rules)")
    return "\n".join(lines)


def curation_summary(rules: RuleSet) -> str:
    """One-line status overview, e.g. ``34 accepted / 12 staging / 3 declined``."""
    return (
        f"{len(rules.accepted())} accepted / "
        f"{len(rules.staged())} staging / "
        f"{len(rules.declined())} declined"
    )
