"""Tests for association-rule generation and the mining pipeline."""

import pytest

from repro.core.rules.items import LABEL_BLACKHOLE
from repro.core.rules.mining import (
    AssociationRule,
    filter_blackhole_rules,
    generate_rules,
    mine_rules,
)
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


class TestGenerateRules:
    def test_confidence_and_support(self):
        # {a} appears 10x, {a, blackhole} 9x -> confidence 0.9.
        a = frozenset({("x", "a")})
        ab = frozenset({("x", "a"), LABEL_BLACKHOLE})
        itemsets = {a: 10, ab: 9, frozenset({LABEL_BLACKHOLE}): 9}
        rules = generate_rules(itemsets, total=20, min_confidence=0.8)
        rule = next(r for r in rules if r.consequent == LABEL_BLACKHOLE)
        assert rule.confidence == pytest.approx(0.9)
        assert rule.support == pytest.approx(0.5)
        assert rule.joint_support == pytest.approx(0.45)

    def test_min_confidence_filters(self):
        a = frozenset({("x", "a")})
        ab = frozenset({("x", "a"), LABEL_BLACKHOLE})
        itemsets = {a: 10, ab: 5, frozenset({LABEL_BLACKHOLE}): 5}
        rules = generate_rules(itemsets, total=20, min_confidence=0.8)
        assert not any(r.consequent == LABEL_BLACKHOLE for r in rules)

    def test_all_consequents_considered(self):
        """Every item of a frequent itemset can be the consequent."""
        ab = frozenset({("x", "a"), ("y", "b")})
        itemsets = {
            frozenset({("x", "a")}): 10,
            frozenset({("y", "b")}): 10,
            ab: 10,
        }
        rules = generate_rules(itemsets, total=10, min_confidence=0.8)
        consequents = {r.consequent for r in rules}
        assert consequents == {("x", "a"), ("y", "b")}

    def test_sorted_by_confidence(self):
        itemsets = {
            frozenset({("x", "a")}): 10,
            frozenset({("x", "a"), LABEL_BLACKHOLE}): 9,
            frozenset({("y", "b")}): 10,
            frozenset({("y", "b"), LABEL_BLACKHOLE}): 10,
            frozenset({LABEL_BLACKHOLE}): 12,
        }
        rules = generate_rules(itemsets, total=20, min_confidence=0.5)
        blackhole_rules = filter_blackhole_rules(rules)
        confidences = [r.confidence for r in blackhole_rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_empty_total(self):
        assert generate_rules({}, total=0, min_confidence=0.5) == []


class TestAssociationRule:
    def test_rejects_empty_antecedent(self):
        with pytest.raises(ValueError):
            AssociationRule(
                antecedent=frozenset(),
                consequent=LABEL_BLACKHOLE,
                confidence=0.9,
                support=0.1,
                joint_support=0.09,
            )

    def test_is_blackhole_rule(self):
        rule = AssociationRule(
            antecedent=frozenset({("port_src", 123)}),
            consequent=LABEL_BLACKHOLE,
            confidence=0.9,
            support=0.1,
            joint_support=0.09,
        )
        assert rule.is_blackhole_rule
        assert "port_src=123" in rule.describe()


class TestMineRules:
    def test_finds_attack_signature(self):
        """A clean NTP-attack signature must be mined."""
        records = [
            make_flow(time=i, src_port=123, dst_port=10000 + i, blackhole=True)
            for i in range(200)
        ] + [
            make_flow(time=i, src_port=443, dst_port=20000 + i, bytes_=12000, blackhole=False)
            for i in range(200)
        ]
        result = mine_rules(FlowDataset.from_records(records), min_support=0.01)
        assert result.blackhole_rules
        best = result.blackhole_rules[0]
        assert ("port_src", 123) in best.antecedent or any(
            ("port_src", 123) in r.antecedent for r in result.blackhole_rules
        )
        assert best.confidence > 0.95

    def test_no_rules_on_pure_benign(self):
        records = [make_flow(time=i, src_port=443) for i in range(50)]
        result = mine_rules(FlowDataset.from_records(records), min_support=0.01)
        assert result.blackhole_rules == []
